"""The 24-hour event-driven delivery engine.

Ties the platform together (§2.1 "Ad delivery"): browsing sessions arrive
per user according to the activity model; each session opens one ad slot;
an auction runs among the eligible study ads (total value = paced bid ×
EAR + quality) against the background market; the winner pays second
price, is charged against its pacing budget, and the impression is
recorded into insights with its mobility-attributed region; the user then
clicks with the *ground-truth* probability (the click outcome feeds
reporting, not the pretrained EAR — a 24-hour run does not retrain the
model, matching how the audited platform behaves within one campaign).

Scoring is vectorised over user cells: an ad's total value depends on the
user only through the observed cell, so each control interval rebuilds a
small (n_ads × 24) value matrix.

Two engine modes share all setup and differ only in the inner loop:

* ``mode="vectorized"`` (default) resolves slots in *chunks*: per chunk
  it gathers an ``(n_ads, n_slots_in_chunk)`` total-value matrix by fancy
  indexing the per-cell values, applies value noise as one matrix draw
  and the repeat-affinity boost from a dense seen matrix, and settles
  every auction with :func:`repro.platform.auction.run_auctions_batch`.
  Budget exhaustion is the only cross-slot dependency, so chunks are
  sized adaptively from each ad's remaining budget ÷ its current maximum
  price; if noise pushes an ad over budget mid-chunk anyway, the chunk is
  truncated at the first over-budget win and the tail is reprocessed with
  the updated alive mask — an ad can therefore exhaust at most once per
  committed chunk, and spend never exceeds budget.
* ``mode="reference"`` keeps the original one-Python-auction-per-slot
  loop and its exact RNG stream, as a behavioural oracle for equivalence
  tests.

The two modes draw different random-number *streams* (a chunk consumes
one matrix-shaped draw where the reference loop consumes one vector per
slot), so individual runs differ slot-by-slot; aggregate delivery
statistics agree within sampling error (asserted by
``tests/platform/test_delivery_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeliveryError
from repro.geo.mobility import MobilityModel
from repro.obs.tracer import get_tracer
from repro.platform.audience import AudienceStore
from repro.platform.auction import run_auction, run_auctions_batch
from repro.platform.campaign import Ad, AdAccount
from repro.platform.cells import CELLS_PER_AGE_GENDER
from repro.platform.competition import CompetitionModel
from repro.platform.ear import EarModel
from repro.platform.engagement import EngagementModel
from repro.platform.insights import AdInsights, InsightsStore
from repro.platform.objectives import objective_scores
from repro.platform.pacing import PacingController
from repro.platform.quality import AdQualityModel
from repro.population.activity import DIURNAL_WEIGHTS, diurnal_weight
from repro.population.universe import UserUniverse

__all__ = ["DeliveryEngine", "DeliveryResult"]

#: Chunk-size clamp for the vectorized engine.  The lower bound keeps the
#: per-chunk numpy overhead amortised even when an ad is near exhaustion;
#: the upper bound caps transient memory at (n_ads × 4096) doubles.
_MIN_CHUNK = 256
_MAX_CHUNK = 4096


@dataclass(frozen=True, slots=True)
class DeliveryResult:
    """Outcome of one 24-hour delivery run."""

    insights: InsightsStore
    total_slots: int
    market_wins: int
    total_spend: float

    def for_ad(self, ad_id: str) -> AdInsights:
        """Insights of one ad."""
        return self.insights.for_ad(ad_id)


class DeliveryEngine:
    """Runs a set of approved ads for one simulated day.

    Parameters
    ----------
    universe, audience_store, account:
        The world the ads deliver into and the account owning them.
    ear:
        The platform's trained estimated-action-rate model.
    engagement:
        Ground truth used only to sample click outcomes.
    competition:
        Background market bids.
    mobility:
        Region attribution of impressions.
    rng:
        Randomness source.
    advertiser_bid:
        The auto-bid value (dollars per click) the platform bids on the
        advertiser's behalf before pacing; the controller scales it.
    quality:
        Ad quality model (defaults to a fresh one).
    hours:
        Delivery horizon (the paper's runs are exactly 24 hours).
    value_noise_sigma:
        Log-scale of per-(slot, ad) idiosyncratic noise multiplied into
        total values.  Real rankers condition on thousands of per-user
        features our cell-level EAR cannot represent; without this term
        the argmax allocation would amplify every cell-level difference
        into near-total separation.  Setting it to 0 recovers the
        deterministic ranker (an ablation).
    repeat_affinity:
        Multiplicative value boost for an ad on a user it has already
        been shown to.  Real rankers strongly favour re-exposure (they
        have a revealed-interest signal), which is why reported reach is
        well below impressions — the paper's Campaign 1 averaged ~1.5
        impressions per reached user.  Set to 1.0 to disable.
    mode:
        ``"vectorized"`` (default) settles slots in batched chunks;
        ``"reference"`` runs the original per-slot Python loop.  The two
        agree statistically but consume different RNG streams (see the
        module docstring).
    """

    def __init__(
        self,
        universe: UserUniverse,
        audience_store: AudienceStore,
        account: AdAccount,
        *,
        ear: EarModel,
        engagement: EngagementModel,
        competition: CompetitionModel,
        mobility: MobilityModel,
        rng: np.random.Generator,
        advertiser_bid: float = 0.30,
        quality: AdQualityModel | None = None,
        hours: int = 24,
        value_noise_sigma: float = 0.5,
        repeat_affinity: float = 2.5,
        mode: str = "vectorized",
    ) -> None:
        if advertiser_bid <= 0:
            raise DeliveryError("advertiser_bid must be positive")
        if hours <= 0:
            raise DeliveryError("hours must be positive")
        if value_noise_sigma < 0:
            raise DeliveryError("value_noise_sigma must be non-negative")
        if repeat_affinity < 1.0:
            raise DeliveryError("repeat_affinity must be at least 1.0")
        if mode not in ("vectorized", "reference"):
            raise DeliveryError(f"unknown delivery mode {mode!r}")
        self._universe = universe
        self._audiences = audience_store
        self._account = account
        self._ear = ear
        self._engagement = engagement
        self._competition = competition
        self._mobility = mobility
        self._rng = rng
        self._bid = advertiser_bid
        self._quality = quality or AdQualityModel()
        self._hours = hours
        self._noise_sigma = value_noise_sigma
        self._repeat_affinity = repeat_affinity
        self._mode = mode
        # The process-local tracer; a no-op unless tracing is enabled.
        # Spans never touch self._rng, so traced and untraced runs are
        # bit-identical (tests/obs/test_overhead.py).
        self._tracer = get_tracer()

    @property
    def mode(self) -> str:
        """Which inner loop this engine runs ("vectorized" or "reference")."""
        return self._mode

    # -- shared setup -----------------------------------------------------

    def _setup(self, ads: list[Ad]):
        """Static per-ad structures shared by both engine modes."""
        with self._tracer.span("delivery.targeting") as span:
            setup = self._setup_inner(ads)
            span.set("n_ads", len(setup[0]))
        return setup

    def _setup_inner(self, ads: list[Ad]):
        deliverable = [ad for ad in ads if ad.is_deliverable()]
        if not deliverable:
            raise DeliveryError("no approved ads to deliver")
        n_ads = len(deliverable)
        n_users = len(self._universe)

        # The pacing plan follows the diurnal traffic curve over a full
        # day; shorter test horizons keep the uniform plan.
        plan = list(DIURNAL_WEIGHTS) if self._hours == 24 else None
        pacing = PacingController(horizon_hours=float(self._hours), plan_weights=plan)
        quality_vec = np.empty(n_ads)
        members_map = self._audiences.members_map()
        eligibility = np.zeros((n_ads, n_users), dtype=bool)
        ear_rows = []
        gt_rows = []
        for i, ad in enumerate(deliverable):
            adset = self._account.adset_of(ad)
            image = ad.creative.effective_image()
            job = ad.creative.job_category()
            objective = self._account.campaign_of(ad).objective
            ear_rows.append(
                objective_scores(self._ear.score_vector(image, job), objective)
            )
            gt_rows.append(self._engagement.probability_vector(image, job))
            quality_vec[i] = self._quality.score(ad.creative)
            # Start below equilibrium so early hours do not burn the budget
            # at inflated self-competition prices; the controller raises the
            # multiplier if the ad falls behind plan.
            pacing.register(ad.ad_id, adset.daily_budget_dollars, initial_multiplier=0.3)
            mask = adset.targeting.eligible_mask(self._universe, members_map)
            if not mask.any():
                raise DeliveryError(f"ad {ad.ad_id} targets an empty audience")
            eligibility[i] = mask
        ear_matrix = np.array(ear_rows)
        gt_matrix = np.array(gt_rows)
        ad_ids = [ad.ad_id for ad in deliverable]
        return deliverable, ad_ids, pacing, ear_matrix, gt_matrix, quality_vec, eligibility

    def run(self, ads: list[Ad]) -> DeliveryResult:
        """Deliver ``ads`` for one day and return the insights.

        Raises
        ------
        DeliveryError
            If no ad is approved for delivery.
        """
        with self._tracer.span(
            "delivery.day", {"mode": self._mode, "hours": self._hours}
        ) as span:
            setup = self._setup(ads)
            span.set("n_ads", len(setup[0]))
            if self._mode == "reference":
                result = self._run_reference(*setup)
            else:
                result = self._run_vectorized(*setup)
            span.set("slots", result.total_slots)
            span.set("impressions", result.insights.total_impressions())
        # Ads that never won still get an (empty) insights row, as the real
        # reporting API would show zeros rather than a missing ad.
        for ad in setup[0]:
            result.insights.for_ad(ad.ad_id)
        return result

    # -- reference mode: one Python auction per slot ----------------------

    def _run_reference(
        self, deliverable, ad_ids, pacing, ear_matrix, gt_matrix, quality_vec, eligibility
    ) -> DeliveryResult:
        users = self._universe.users
        n_ads = len(deliverable)
        obs_cell = self._universe.obs_cell_array
        gt_cell = self._universe.gt_cell_array
        rates = self._universe.activity_rates

        insights = InsightsStore()
        total_slots = 0
        market_wins = 0
        neg_inf = float("-inf")
        # ads already shown per user (revealed-interest re-exposure boost)
        shown_to: dict[int, list[int]] = {}

        for hour in range(self._hours):
            with self._tracer.span("delivery.pacing", {"hour": hour}):
                pacing.control_all(float(hour))
                multipliers = np.array([pacing.multiplier(ad_id) for ad_id in ad_ids])
                # Liveness is owned by the pacing controller; the loop below
                # refreshes a winner's entry right after it is charged.
                alive = pacing.alive_mask(ad_ids)
            if not alive.any():
                break
            # total value per (ad, observed cell) at this hour's pacing
            values = (multipliers[:, None] * self._bid) * ear_matrix + quality_vec[:, None]

            session_counts = self._rng.poisson(
                rates * (diurnal_weight(hour % 24) / 24.0)
            )
            slot_users = np.repeat(np.arange(len(users)), session_counts)
            self._rng.shuffle(slot_users)
            if slot_users.size == 0:
                continue
            competing = self._competition.sample_many(obs_cell[slot_users])
            total_slots += int(slot_users.size)

            with self._tracer.span(
                "delivery.auctions", {"hour": hour, "slots": int(slot_users.size)}
            ):
                for slot_idx in range(slot_users.size):
                    uid = int(slot_users[slot_idx])
                    cell = int(obs_cell[uid])
                    candidate = np.where(
                        eligibility[:, uid] & alive, values[:, cell], neg_inf
                    )
                    if self._noise_sigma > 0:
                        candidate = candidate * np.exp(
                            self._noise_sigma * self._rng.standard_normal(n_ads)
                        )
                    if self._repeat_affinity > 1.0:
                        seen = shown_to.get(uid)
                        if seen:
                            candidate[seen] *= self._repeat_affinity
                    outcome = run_auction(candidate, float(competing[slot_idx]))
                    if outcome.winner_index is None:
                        market_wins += 1
                        continue
                    winner = outcome.winner_index
                    ad = deliverable[winner]
                    # The last impression cannot push spend past the budget:
                    # the platform bills at most the remaining balance.
                    price = min(outcome.price, pacing.state(ad.ad_id).remaining)
                    pacing.record_spend(ad.ad_id, price)
                    alive[winner] = pacing.can_bid(ad.ad_id)
                    user = users[uid]
                    location = self._mobility.locate(user.home_state, user.home_dma)
                    clicked = self._rng.random() < gt_matrix[winner, gt_cell[uid]]
                    insights.for_ad(ad.ad_id).record(
                        user, location.state, location.dma, price, clicked, hour=hour
                    )
                    shown_to.setdefault(uid, []).append(winner)

        return DeliveryResult(
            insights=insights,
            total_slots=total_slots,
            market_wins=market_wins,
            total_spend=insights.total_spend(),
        )

    # -- vectorized mode: chunked batch auctions --------------------------

    def _chunk_limit(self, pacing, ad_ids, alive, values) -> int:
        """Adaptive chunk size: no alive ad should exhaust more than once.

        Sized from each alive ad's remaining budget ÷ its maximum possible
        noise-free price, so a chunk rarely straddles an exhaustion; value
        noise can still push an ad over early, which the truncate-and-
        reprocess path in :meth:`_run_vectorized` handles exactly.
        """
        limit = _MAX_CHUNK
        for i in np.flatnonzero(alive):
            max_price = float(values[i].max()) * self._repeat_affinity
            if max_price <= 0:
                continue
            remaining = pacing.state(ad_ids[i]).remaining
            limit = min(limit, int(remaining / max_price) + 1)
        return max(limit, _MIN_CHUNK)

    def _run_vectorized(
        self, deliverable, ad_ids, pacing, ear_matrix, gt_matrix, quality_vec, eligibility
    ) -> DeliveryResult:
        n_users = len(self._universe)
        obs_cell = self._universe.obs_cell_array
        gt_cell = self._universe.gt_cell_array
        rates = self._universe.activity_rates
        home_dma_codes = self._universe.home_dma_code_array
        age_gender_codes = obs_cell // CELLS_PER_AGE_GENDER
        n_ads = len(deliverable)

        insights = InsightsStore()
        total_slots = 0
        market_wins = 0
        neg_inf = float("-inf")
        # Dense (ad, user) re-exposure matrix: the boost is binary (an ad
        # seen once or thrice boosts the same), so bools suffice.
        seen = np.zeros((n_ads, n_users), dtype=bool)

        for hour in range(self._hours):
            with self._tracer.span("delivery.pacing", {"hour": hour}):
                pacing.control_all(float(hour))
                alive = pacing.alive_mask(ad_ids)
            if not alive.any():
                break
            multipliers = np.array([pacing.multiplier(ad_id) for ad_id in ad_ids])
            values = (multipliers[:, None] * self._bid) * ear_matrix + quality_vec[:, None]

            session_counts = self._rng.poisson(
                rates * (diurnal_weight(hour % 24) / 24.0)
            )
            slot_users = np.repeat(np.arange(n_users), session_counts)
            self._rng.shuffle(slot_users)
            n_slots = int(slot_users.size)
            if n_slots == 0:
                continue
            competing = self._competition.sample_many(obs_cell[slot_users])
            total_slots += n_slots

            # Committed wins of this hour, batched through clicks, mobility
            # and insights once the hour is settled.
            hour_uids: list[np.ndarray] = []
            hour_ads: list[np.ndarray] = []
            hour_prices: list[np.ndarray] = []

            pos = 0
            while pos < n_slots:
                if not alive.any():
                    # Every study ad is exhausted: the market takes the
                    # rest of the hour's slots.
                    market_wins += n_slots - pos
                    break
                end = min(pos + self._chunk_limit(pacing, ad_ids, alive, values), n_slots)
                with self._tracer.span(
                    "delivery.auction_chunk", {"hour": hour, "slots": int(end - pos)}
                ) as chunk_span:
                    uids = slot_users[pos:end]
                    cand = values[:, obs_cell[uids]]
                    if self._noise_sigma > 0:
                        cand = cand * np.exp(
                            self._noise_sigma * self._rng.standard_normal(cand.shape)
                        )
                    if self._repeat_affinity > 1.0:
                        cand = np.where(seen[:, uids], cand * self._repeat_affinity, cand)
                    cand = np.where(
                        eligibility[:, uids] & alive[:, None], cand, neg_inf
                    )
                    batch = run_auctions_batch(cand, competing[pos:end])

                    win_slots = np.flatnonzero(batch.winner_indices >= 0)
                    win_ads = batch.winner_indices[win_slots]
                    win_prices = batch.prices[win_slots]

                    # Find the earliest over-budget win, if any: spend is the
                    # only cross-slot dependency, so everything before it is
                    # exactly what the sequential engine would have committed.
                    cutoff = None  # (relative slot, ad index, capped price)
                    for a in np.unique(win_ads):
                        of_ad = win_ads == a
                        cum = np.cumsum(win_prices[of_ad])
                        remaining = pacing.state(ad_ids[a]).remaining
                        over = np.flatnonzero(cum >= remaining)
                        if over.size:
                            rel = int(win_slots[of_ad][over[0]])
                            if cutoff is None or rel < cutoff[0]:
                                spent_before = float(cum[over[0]]) - float(
                                    win_prices[of_ad][over[0]]
                                )
                                cutoff = (rel, int(a), remaining - spent_before)

                    if cutoff is None:
                        committed = slice(None)
                        next_pos = end
                    else:
                        committed = win_slots <= cutoff[0]
                        next_pos = pos + cutoff[0] + 1
                    c_slots = win_slots[committed]
                    c_ads = win_ads[committed]
                    c_prices = win_prices[committed].copy()
                    if cutoff is not None and c_slots.size:
                        # The exhausting impression bills at most the balance.
                        c_prices[-1] = min(c_prices[-1], cutoff[2])
                    c_uids = uids[c_slots]

                    for a in np.unique(c_ads):
                        pacing.record_spend(ad_ids[a], float(c_prices[c_ads == a].sum()))
                    seen[c_ads, c_uids] = True
                    market_wins += int(next_pos - pos) - int(c_slots.size)
                    hour_uids.append(c_uids)
                    hour_ads.append(c_ads)
                    hour_prices.append(c_prices)
                    if cutoff is not None:
                        alive = pacing.alive_mask(ad_ids)
                    chunk_span.set("wins", int(c_slots.size))
                    pos = next_pos

            if not hour_uids:
                continue
            w_uids = np.concatenate(hour_uids)
            if w_uids.size == 0:
                continue
            w_ads = np.concatenate(hour_ads)
            w_prices = np.concatenate(hour_prices)
            with self._tracer.span(
                "delivery.engagement", {"hour": hour, "wins": int(w_uids.size)}
            ):
                clicked = (
                    self._rng.random(w_uids.size) < gt_matrix[w_ads, gt_cell[w_uids]]
                )
                dma_codes = self._mobility.locate_batch(home_dma_codes[w_uids])
            with self._tracer.span("delivery.insights", {"hour": hour}):
                for a in np.unique(w_ads):
                    of_ad = w_ads == a
                    insights.record_batch(
                        ad_ids[a],
                        w_uids[of_ad],
                        age_gender_codes[w_uids[of_ad]],
                        dma_codes[of_ad],
                        w_prices[of_ad],
                        clicked[of_ad],
                        hour=hour,
                    )

        return DeliveryResult(
            insights=insights,
            total_slots=total_slots,
            market_wins=market_wins,
            total_spend=insights.total_spend(),
        )
