"""The 24-hour event-driven delivery engine.

Ties the platform together (§2.1 "Ad delivery"): browsing sessions arrive
per user according to the activity model; each session opens one ad slot;
an auction runs among the eligible study ads (total value = paced bid ×
EAR + quality) against the background market; the winner pays second
price, is charged against its pacing budget, and the impression is
recorded into insights with its mobility-attributed region; the user then
clicks with the *ground-truth* probability (the click outcome feeds
reporting, not the pretrained EAR — a 24-hour run does not retrain the
model, matching how the audited platform behaves within one campaign).

Scoring is vectorised over user cells *and over ads*: an ad's total value
depends on the user only through the observed cell, so each control
interval rebuilds a small (n_ads × 24) value matrix, and every per-chunk
step — scoring, the auction, the over-budget cutoff scan, spend commits
and insights recording — is an array operation over the whole ad fleet.
The engine scales past hundreds of concurrent campaigns: per-ad state
lives in the columnar :class:`~repro.platform.pacing.PacingController`
and the two ad-by-user tables (targeting eligibility and the re-exposure
"seen" store) are bit-packed
(:class:`~repro.platform.bitset.PackedBitMatrix`, 8 users/byte), so 256
ads over a 10M-user universe cost ~320 MB per table instead of 2.5 GB.

Three inner loops share all setup:

* ``mode="vectorized"``, ``workers=1`` (default) resolves slots in
  *chunks*: per chunk it gathers an ``(n_ads, n_slots_in_chunk)``
  total-value matrix by fancy indexing the per-cell values, applies value
  noise as one matrix draw and the repeat-affinity boost from the seen
  store, and settles every auction with
  :func:`repro.platform.auction.run_auctions_batch`.  Budget exhaustion
  is the only cross-slot dependency, so chunks are sized adaptively from
  each ad's remaining budget ÷ its current maximum price; if noise pushes
  an ad over budget mid-chunk anyway, the chunk is truncated at the first
  over-budget win and the tail is reprocessed with the updated alive
  mask — an ad can therefore exhaust at most once per committed chunk,
  and spend never exceeds budget.
* ``mode="vectorized"``, ``workers>1`` runs the same chunk kernel on a
  :class:`~concurrent.futures.ThreadPoolExecutor`: scoring+auction is a
  pure NumPy function over shared read-only columns (the hot ufuncs and
  sorts release the GIL), chunk boundaries and per-chunk RNG streams are
  fixed at the top of each hour, and the main thread commits chunks in
  deterministic chunk order, re-settling a chunk from its scored value
  matrix whenever the alive fleet shrank since scoring.  The kernel
  scores in single precision (the value model is far coarser than seven
  significant digits and the lognormal noise dominates; committed prices
  stay ``float64``), halving the memory traffic of the gather, noise,
  boost and auction passes.  Results are bit-identical for every
  ``workers>1`` value (the schedule does not depend on the pool size)
  and statistically equivalent to ``workers=1``; the seen store and
  pacing ledger are only written between scoring waves, so the kernel
  never races them.
* ``mode="reference"`` keeps the original one-Python-auction-per-slot
  loop and its exact RNG stream, as a behavioural oracle for equivalence
  tests.

The modes draw different random-number *streams* (a chunk consumes one
matrix-shaped draw where the reference loop consumes one vector per
slot, and the parallel scheduler seeds one stream per chunk), so
individual runs differ slot-by-slot; aggregate delivery statistics agree
within sampling error (asserted by
``tests/platform/test_delivery_equivalence.py``).
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import DeliveryError
from repro.geo.mobility import MobilityModel
from repro.obs.tracer import get_tracer
from repro.platform.audience import AudienceStore
from repro.platform.auction import BatchAuctionOutcome, run_auction, run_auctions_batch
from repro.platform.bitset import PackedBitMatrix
from repro.platform.campaign import Ad, AdAccount
from repro.platform.cells import CELLS_PER_AGE_GENDER
from repro.platform.competition import CompetitionModel
from repro.platform.ear import EarModel
from repro.platform.engagement import EngagementModel
from repro.platform.insights import AdInsights, InsightsStore
from repro.platform.objectives import objective_scores
from repro.platform.pacing import PacingController
from repro.platform.quality import AdQualityModel
from repro.population.activity import DIURNAL_WEIGHTS, diurnal_weight
from repro.population.universe import UserUniverse

__all__ = ["DeliveryEngine", "DeliveryResult"]

#: Chunk-size clamp for the vectorized engine.  The lower bound keeps the
#: per-chunk numpy overhead amortised even when an ad is near exhaustion;
#: the upper bound caps transient memory at (n_ads × 4096) doubles.
_MIN_CHUNK = 256
_MAX_CHUNK = 4096

#: Chunk floor for the parallel scheduler.  The sequential engine sizes
#: chunks so no ad exhausts mid-chunk (cheap truncation mattered more
#: than per-chunk overhead when chunks were re-planned after every
#: commit); the parallel scheduler fixes its schedule per hour anyway, so
#: it prefers fewer, larger chunks — per-call numpy overhead dominates
#: small fleets' matrices — and pays the rare mid-chunk exhaustion with
#: an exact truncate-and-resettle at commit time.
_PARALLEL_CHUNK = 2048

_NEG_INF = float("-inf")


def chunk_limit(
    remaining: np.ndarray,
    alive: np.ndarray,
    values: np.ndarray,
    repeat_affinity: float,
) -> int:
    """Adaptive chunk size: no alive ad should exhaust more than once.

    Sized from each alive ad's remaining budget ÷ its maximum possible
    noise-free price, so a chunk rarely straddles an exhaustion; value
    noise can still push an ad over early, which the truncate-and-
    reprocess path handles exactly.  One array pass over the fleet —
    equal, ad for ad, to the per-ad Python loop it replaced (truncation
    commutes with the minimum over ads).
    """
    max_price = values.max(axis=1) * repeat_affinity
    constrained = alive & (max_price > 0)
    if not constrained.any():
        return _MAX_CHUNK
    tightest = float((remaining[constrained] / max_price[constrained]).min())
    return max(min(_MAX_CHUNK, int(tightest) + 1), _MIN_CHUNK)


def score_chunk(
    values: np.ndarray,
    cells: np.ndarray,
    uids: np.ndarray,
    competing: np.ndarray,
    rng: np.random.Generator,
    seen: PackedBitMatrix,
    eligibility: PackedBitMatrix,
    alive: np.ndarray,
    noise_sigma: float,
    repeat_affinity: float,
):
    """Score one chunk of slots and settle its auctions.

    The pure delivery kernel: NumPy only, no engine state, every input
    read-only — safe to run on a worker thread (the matrix ufuncs, the
    RNG fill and the auction's argmax/partition all release the GIL).
    ``cells`` holds the slots' observed cells (parallel to ``uids``); the
    candidate matrix inherits the dtype of ``values``, so the parallel
    scheduler scores in ``float32`` by handing over a single-precision
    value table while ``workers=1`` keeps ``float64``.  Returns the
    masked ``(n_ads, n_slots)`` candidate matrix (kept so a commit can
    re-settle the chunk if the alive fleet shrank since scoring) and the
    :class:`~repro.platform.auction.BatchAuctionOutcome`.
    """
    # Every mutation below is in place on chunk-private arrays: the same
    # float ops an allocating np.where chain would run (bit-identical
    # results), minus one full-matrix temporary per step.  The masked
    # steps use ufunc ``where=`` stores rather than boolean fancy
    # indexing (identical elementwise results, no gather/scatter of the
    # selected entries).
    cand = values[:, cells]
    if noise_sigma > 0:
        noise = rng.standard_normal(cand.shape, dtype=cand.dtype)
        noise *= noise_sigma
        np.exp(noise, out=noise)
        cand *= noise
    if repeat_affinity > 1.0 and seen.any_set:
        boosted = seen.gather(uids)
        np.multiply(cand, repeat_affinity, out=cand, where=boosted)
    biddable = eligibility.gather(uids)
    biddable &= alive[:, None]
    np.copyto(cand, _NEG_INF, where=np.logical_not(biddable, out=biddable))
    return cand, run_auctions_batch(cand, competing)


def _score_chunk_task(args) -> tuple:
    """Pool entry point: run the kernel, tag the scoring thread's name."""
    cand, outcome = score_chunk(*args)
    return threading.current_thread().name, cand, outcome


def find_cutoff(
    win_slots: np.ndarray,
    win_ads: np.ndarray,
    win_prices: np.ndarray,
    remaining: np.ndarray,
) -> tuple[int, int, float] | None:
    """Earliest over-budget win in a chunk, or ``None``.

    Returns ``(relative slot, ad index, capped price)`` — the slot at
    which some ad's cumulative chunk spend first reaches its remaining
    budget, and the balance its exhausting impression may bill.  Spend is
    the only cross-slot dependency, so everything before that slot is
    exactly what the sequential engine would have committed.

    One sorted-segment pass over the fleet: per-ad ``reduceat`` totals
    prefilter the ads that can possibly exhaust, and only those few run
    the exact per-ad cumulative scan — bit-identical to the all-ads
    Python loop it replaced (segment totals and the sequential cumsum
    can disagree by a few ulp around the threshold, so the prefilter
    keeps a safety margin and only the exact scan decides).
    """
    if win_slots.size == 0:
        return None
    order = np.argsort(win_ads, kind="stable")
    ads = win_ads[order]
    prices = win_prices[order]
    slots = win_slots[order]
    unique_ads, starts = np.unique(ads, return_index=True)
    bounds = np.append(starts, ads.size)
    totals = np.add.reduceat(prices, starts)
    budgets_left = remaining[unique_ads]
    margin = 1e-9 * (np.abs(totals) + np.abs(budgets_left) + 1.0)
    cutoff: tuple[int, int, float] | None = None
    for k in np.flatnonzero(totals >= budgets_left - margin):
        s, e = int(bounds[k]), int(bounds[k + 1])
        cum = np.cumsum(prices[s:e])
        over = np.flatnonzero(cum >= budgets_left[k])
        if over.size:
            rel = int(slots[s:e][over[0]])
            if cutoff is None or rel < cutoff[0]:
                spent_before = float(cum[over[0]]) - float(prices[s:e][over[0]])
                cutoff = (rel, int(unique_ads[k]), float(budgets_left[k]) - spent_before)
    return cutoff


def resettle_dead(
    cand: np.ndarray,
    outcome: BatchAuctionOutcome,
    competing: np.ndarray,
    newly_dead: np.ndarray,
) -> BatchAuctionOutcome:
    """Re-settle a chunk's auctions after ads in ``newly_dead`` exhausted.

    A dead ad can only have influenced a slot it won or whose price it
    set (it was the runner-up), and both require its value to be at least
    the settled price; market-won slots never depend on study ads'
    internal ordering.  So instead of re-auctioning the full
    ``(n_ads, n_slots)`` matrix, mask the dead rows and re-run only the
    affected study-won columns — for a fleet where one small-budget ad
    exhausts, that is a handful of columns instead of the whole chunk.
    The patched outcome equals a full re-auction on the masked matrix in
    every field the commit path reads (``winning_values`` of market-won
    slots may keep the dead ad's value; nothing reads them).

    ``cand`` is mutated: the dead rows are set to ``-inf``.
    """
    dead_max = cand[newly_dead, :].max(axis=0)
    cand[newly_dead, :] = _NEG_INF
    winner = outcome.winner_indices
    # newly_dead[winner] reads a junk entry where winner is -1; the
    # leading winner >= 0 term masks those slots out.
    affected = (winner >= 0) & (
        newly_dead[winner] | (dead_max >= outcome.prices)
    )
    if not affected.any():
        return outcome
    sub = run_auctions_batch(cand[:, affected], competing[affected])
    winner = winner.copy()
    prices = outcome.prices.copy()
    winning = outcome.winning_values.copy()
    winner[affected] = sub.winner_indices
    prices[affected] = sub.prices
    winning[affected] = sub.winning_values
    return BatchAuctionOutcome(
        winner_indices=winner, prices=prices, winning_values=winning
    )


@dataclass(frozen=True, slots=True)
class DeliveryResult:
    """Outcome of one 24-hour delivery run."""

    insights: InsightsStore
    total_slots: int
    market_wins: int
    total_spend: float

    def for_ad(self, ad_id: str) -> AdInsights:
        """Insights of one ad."""
        return self.insights.for_ad(ad_id)


class DeliveryEngine:
    """Runs a set of approved ads for one simulated day.

    Parameters
    ----------
    universe, audience_store, account:
        The world the ads deliver into and the account owning them.
    ear:
        The platform's trained estimated-action-rate model.
    engagement:
        Ground truth used only to sample click outcomes.
    competition:
        Background market bids.
    mobility:
        Region attribution of impressions.
    rng:
        Randomness source.
    advertiser_bid:
        The auto-bid value (dollars per click) the platform bids on the
        advertiser's behalf before pacing; the controller scales it.
    quality:
        Ad quality model (defaults to a fresh one).
    hours:
        Delivery horizon (the paper's runs are exactly 24 hours).
    value_noise_sigma:
        Log-scale of per-(slot, ad) idiosyncratic noise multiplied into
        total values.  Real rankers condition on thousands of per-user
        features our cell-level EAR cannot represent; without this term
        the argmax allocation would amplify every cell-level difference
        into near-total separation.  Setting it to 0 recovers the
        deterministic ranker (an ablation).
    repeat_affinity:
        Multiplicative value boost for an ad on a user it has already
        been shown to.  Real rankers strongly favour re-exposure (they
        have a revealed-interest signal), which is why reported reach is
        well below impressions — the paper's Campaign 1 averaged ~1.5
        impressions per reached user.  Set to 1.0 to disable.
    mode:
        ``"vectorized"`` (default) settles slots in batched chunks;
        ``"reference"`` runs the original per-slot Python loop.  The two
        agree statistically but consume different RNG streams (see the
        module docstring).
    workers:
        Number of chunk-scoring threads for the vectorized engine.  The
        default 1 keeps the sequential adaptive-chunk schedule (and its
        exact RNG stream); any ``workers>1`` runs the fixed-schedule
        parallel scheduler, whose results are bit-identical across pool
        sizes and statistically equivalent to ``workers=1``.  Rejected
        for ``mode="reference"``.
    """

    def __init__(
        self,
        universe: UserUniverse,
        audience_store: AudienceStore,
        account: AdAccount,
        *,
        ear: EarModel,
        engagement: EngagementModel,
        competition: CompetitionModel,
        mobility: MobilityModel,
        rng: np.random.Generator,
        advertiser_bid: float = 0.30,
        quality: AdQualityModel | None = None,
        hours: int = 24,
        value_noise_sigma: float = 0.5,
        repeat_affinity: float = 2.5,
        mode: str = "vectorized",
        workers: int = 1,
    ) -> None:
        if advertiser_bid <= 0:
            raise DeliveryError("advertiser_bid must be positive")
        if hours <= 0:
            raise DeliveryError("hours must be positive")
        if value_noise_sigma < 0:
            raise DeliveryError("value_noise_sigma must be non-negative")
        if repeat_affinity < 1.0:
            raise DeliveryError("repeat_affinity must be at least 1.0")
        if mode not in ("vectorized", "reference"):
            raise DeliveryError(f"unknown delivery mode {mode!r}")
        if not isinstance(workers, int) or workers < 1:
            raise DeliveryError("workers must be a positive integer")
        if workers > 1 and mode == "reference":
            raise DeliveryError("workers > 1 requires the vectorized mode")
        self._universe = universe
        self._audiences = audience_store
        self._account = account
        self._ear = ear
        self._engagement = engagement
        self._competition = competition
        self._mobility = mobility
        self._rng = rng
        self._bid = advertiser_bid
        self._quality = quality or AdQualityModel()
        self._hours = hours
        self._noise_sigma = value_noise_sigma
        self._repeat_affinity = repeat_affinity
        self._mode = mode
        self._workers = workers
        # The process-local tracer; a no-op unless tracing is enabled.
        # Spans never touch self._rng, so traced and untraced runs are
        # bit-identical (tests/obs/test_overhead.py).  Only the main
        # thread emits spans: chunk workers run the pure kernel and the
        # commit loop labels each chunk span with its scoring thread.
        self._tracer = get_tracer()

    @property
    def mode(self) -> str:
        """Which inner loop this engine runs ("vectorized" or "reference")."""
        return self._mode

    @property
    def workers(self) -> int:
        """Chunk-scoring thread count of the vectorized engine."""
        return self._workers

    # -- shared setup -----------------------------------------------------

    def _setup(self, ads: list[Ad]):
        """Static per-ad structures shared by both engine modes."""
        with self._tracer.span("delivery.targeting") as span:
            setup = self._setup_inner(ads)
            span.set("n_ads", len(setup[0]))
        return setup

    def _setup_inner(self, ads: list[Ad]):
        deliverable = [ad for ad in ads if ad.is_deliverable()]
        if not deliverable:
            raise DeliveryError("no approved ads to deliver")
        n_ads = len(deliverable)
        n_users = len(self._universe)

        # The pacing plan follows the diurnal traffic curve over a full
        # day; shorter test horizons keep the uniform plan.
        plan = list(DIURNAL_WEIGHTS) if self._hours == 24 else None
        pacing = PacingController(horizon_hours=float(self._hours), plan_weights=plan)
        quality_vec = np.empty(n_ads)
        members_map = self._audiences.members_map()
        eligibility = PackedBitMatrix(n_ads, n_users)
        ear_rows = []
        gt_rows = []
        # Large fleets reuse creatives and targeting specs heavily (the
        # many-campaign benchmark cycles a handful of audiences over
        # hundreds of ads), and all three derivations are deterministic in
        # their keys — memoise per distinct key instead of per ad.
        ear_cache: dict = {}
        gt_cache: dict = {}
        mask_cache: dict = {}
        for i, ad in enumerate(deliverable):
            adset = self._account.adset_of(ad)
            image = ad.creative.effective_image()
            job = ad.creative.job_category()
            objective = self._account.campaign_of(ad).objective
            ear_key = (image, job, objective)
            ear_row = ear_cache.get(ear_key)
            if ear_row is None:
                ear_row = ear_cache[ear_key] = objective_scores(
                    self._ear.score_vector(image, job), objective
                )
            ear_rows.append(ear_row)
            gt_row = gt_cache.get((image, job))
            if gt_row is None:
                gt_row = gt_cache[(image, job)] = (
                    self._engagement.probability_vector(image, job)
                )
            gt_rows.append(gt_row)
            quality_vec[i] = self._quality.score(ad.creative)
            # Start below equilibrium so early hours do not burn the budget
            # at inflated self-competition prices; the controller raises the
            # multiplier if the ad falls behind plan.
            pacing.register(ad.ad_id, adset.daily_budget_dollars, initial_multiplier=0.3)
            mask = mask_cache.get(adset.targeting)
            if mask is None:
                mask = mask_cache[adset.targeting] = (
                    adset.targeting.eligible_mask(self._universe, members_map)
                )
            if not mask.any():
                raise DeliveryError(f"ad {ad.ad_id} targets an empty audience")
            eligibility.set_row(i, mask)
        ear_matrix = np.array(ear_rows)
        gt_matrix = np.array(gt_rows)
        ad_ids = [ad.ad_id for ad in deliverable]
        return deliverable, ad_ids, pacing, ear_matrix, gt_matrix, quality_vec, eligibility

    def run(self, ads: list[Ad]) -> DeliveryResult:
        """Deliver ``ads`` for one day and return the insights.

        Raises
        ------
        DeliveryError
            If no ad is approved for delivery.
        """
        with self._tracer.span(
            "delivery.day",
            {"mode": self._mode, "hours": self._hours, "workers": self._workers},
        ) as span:
            setup = self._setup(ads)
            span.set("n_ads", len(setup[0]))
            if self._mode == "reference":
                result = self._run_reference(*setup)
            elif self._workers > 1:
                result = self._run_parallel(*setup)
            else:
                result = self._run_vectorized(*setup)
            span.set("slots", result.total_slots)
            span.set("impressions", result.insights.total_impressions())
        # Ads that never won still get an (empty) insights row, as the real
        # reporting API would show zeros rather than a missing ad.
        for ad in setup[0]:
            result.insights.for_ad(ad.ad_id)
        return result

    # -- reference mode: one Python auction per slot ----------------------

    def _run_reference(
        self, deliverable, ad_ids, pacing, ear_matrix, gt_matrix, quality_vec, eligibility
    ) -> DeliveryResult:
        users = self._universe.users
        n_ads = len(deliverable)
        obs_cell = self._universe.obs_cell_array
        gt_cell = self._universe.gt_cell_array
        rates = self._universe.activity_rates

        insights = InsightsStore()
        total_slots = 0
        market_wins = 0
        # ads already shown per user (revealed-interest re-exposure boost)
        shown_to: dict[int, list[int]] = {}

        for hour in range(self._hours):
            with self._tracer.span("delivery.pacing", {"hour": hour}):
                pacing.control_all(float(hour))
                multipliers = np.array([pacing.multiplier(ad_id) for ad_id in ad_ids])
                # Liveness is owned by the pacing controller; the loop below
                # refreshes a winner's entry right after it is charged.
                alive = pacing.alive_mask(ad_ids)
            if not alive.any():
                break
            # total value per (ad, observed cell) at this hour's pacing
            values = (multipliers[:, None] * self._bid) * ear_matrix + quality_vec[:, None]

            session_counts = self._rng.poisson(
                rates * (diurnal_weight(hour % 24) / 24.0)
            )
            slot_users = np.repeat(np.arange(len(users)), session_counts)
            self._rng.shuffle(slot_users)
            if slot_users.size == 0:
                continue
            competing = self._competition.sample_many(obs_cell[slot_users])
            total_slots += int(slot_users.size)

            with self._tracer.span(
                "delivery.auctions", {"hour": hour, "slots": int(slot_users.size)}
            ):
                for slot_idx in range(slot_users.size):
                    uid = int(slot_users[slot_idx])
                    cell = int(obs_cell[uid])
                    candidate = np.where(
                        eligibility.column(uid) & alive, values[:, cell], _NEG_INF
                    )
                    if self._noise_sigma > 0:
                        candidate = candidate * np.exp(
                            self._noise_sigma * self._rng.standard_normal(n_ads)
                        )
                    if self._repeat_affinity > 1.0:
                        seen = shown_to.get(uid)
                        if seen:
                            candidate[seen] *= self._repeat_affinity
                    outcome = run_auction(candidate, float(competing[slot_idx]))
                    if outcome.winner_index is None:
                        market_wins += 1
                        continue
                    winner = outcome.winner_index
                    ad = deliverable[winner]
                    # The last impression cannot push spend past the budget:
                    # the platform bills at most the remaining balance.
                    price = min(outcome.price, pacing.state(ad.ad_id).remaining)
                    pacing.record_spend(ad.ad_id, price)
                    alive[winner] = pacing.can_bid(ad.ad_id)
                    user = users[uid]
                    location = self._mobility.locate(user.home_state, user.home_dma)
                    clicked = self._rng.random() < gt_matrix[winner, gt_cell[uid]]
                    insights.for_ad(ad.ad_id).record(
                        user, location.state, location.dma, price, clicked, hour=hour
                    )
                    shown_to.setdefault(uid, []).append(winner)

        return DeliveryResult(
            insights=insights,
            total_slots=total_slots,
            market_wins=market_wins,
            total_spend=insights.total_spend(),
        )

    # -- vectorized mode: chunked batch auctions --------------------------

    def _hour_traffic(self, hour: int, rates: np.ndarray, obs_cell: np.ndarray):
        """Sample one hour's slot users (shuffled), their cells and bids."""
        session_counts = self._rng.poisson(
            rates * (diurnal_weight(hour % 24) / 24.0)
        )
        slot_users = np.repeat(np.arange(rates.shape[0]), session_counts)
        self._rng.shuffle(slot_users)
        if slot_users.size == 0:
            return slot_users, None, None
        slot_cells = obs_cell[slot_users]
        return slot_users, slot_cells, self._competition.sample_many(slot_cells)

    def _record_hour(
        self, insights, ad_ids, hour, hour_uids, hour_ads, hour_prices,
        gt_matrix, gt_cell, age_gender_codes, home_dma_codes,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Push one settled hour through clicks, mobility and reporting.

        Returns the concatenated (win uids, win ads) for callers that
        defer seen-store updates to the end of the hour.
        """
        w_uids = np.concatenate(hour_uids)
        w_ads = np.concatenate(hour_ads)
        w_prices = np.concatenate(hour_prices)
        with self._tracer.span(
            "delivery.engagement", {"hour": hour, "wins": int(w_uids.size)}
        ):
            clicked = (
                self._rng.random(w_uids.size) < gt_matrix[w_ads, gt_cell[w_uids]]
            )
            dma_codes = self._mobility.locate_batch(home_dma_codes[w_uids])
        with self._tracer.span("delivery.insights", {"hour": hour}):
            insights.record_hour(
                ad_ids,
                w_ads,
                w_uids,
                age_gender_codes[w_uids],
                dma_codes,
                w_prices,
                clicked,
                hour=hour,
            )
        return w_uids, w_ads

    def _run_vectorized(
        self, deliverable, ad_ids, pacing, ear_matrix, gt_matrix, quality_vec, eligibility
    ) -> DeliveryResult:
        n_users = len(self._universe)
        obs_cell = self._universe.obs_cell_array
        gt_cell = self._universe.gt_cell_array
        rates = self._universe.activity_rates
        home_dma_codes = self._universe.home_dma_code_array
        age_gender_codes = obs_cell // CELLS_PER_AGE_GENDER
        n_ads = len(deliverable)

        insights = InsightsStore()
        total_slots = 0
        market_wins = 0
        # Re-exposure store: the boost is binary (an ad seen once or
        # thrice boosts the same), so one bit per (ad, user) suffices.
        seen = PackedBitMatrix(n_ads, n_users)

        for hour in range(self._hours):
            with self._tracer.span("delivery.pacing", {"hour": hour}):
                pacing.control_all(float(hour))
                alive = pacing.alive_array()
            if not alive.any():
                break
            multipliers = pacing.multiplier_array()
            values = (multipliers[:, None] * self._bid) * ear_matrix + quality_vec[:, None]

            slot_users, slot_cells, competing = self._hour_traffic(hour, rates, obs_cell)
            n_slots = int(slot_users.size)
            if n_slots == 0:
                continue
            total_slots += n_slots

            # Committed wins of this hour, batched through clicks, mobility
            # and insights once the hour is settled.
            hour_uids: list[np.ndarray] = []
            hour_ads: list[np.ndarray] = []
            hour_prices: list[np.ndarray] = []

            pos = 0
            while pos < n_slots:
                if not alive.any():
                    # Every study ad is exhausted: the market takes the
                    # rest of the hour's slots.
                    market_wins += n_slots - pos
                    break
                limit = chunk_limit(
                    pacing.remaining_array(), alive, values, self._repeat_affinity
                )
                end = min(pos + limit, n_slots)
                with self._tracer.span(
                    "delivery.auction_chunk", {"hour": hour, "slots": int(end - pos)}
                ) as chunk_span:
                    uids = slot_users[pos:end]
                    cand, batch = score_chunk(
                        values, slot_cells[pos:end], uids, competing[pos:end],
                        self._rng, seen, eligibility, alive,
                        self._noise_sigma, self._repeat_affinity,
                    )

                    win_slots = np.flatnonzero(batch.winner_indices >= 0)
                    win_ads = batch.winner_indices[win_slots]
                    win_prices = batch.prices[win_slots]

                    # Find the earliest over-budget win, if any: spend is the
                    # only cross-slot dependency, so everything before it is
                    # exactly what the sequential engine would have committed.
                    cutoff = find_cutoff(
                        win_slots, win_ads, win_prices, pacing.remaining_array()
                    )

                    if cutoff is None:
                        committed = slice(None)
                        next_pos = end
                    else:
                        committed = win_slots <= cutoff[0]
                        next_pos = pos + cutoff[0] + 1
                    c_slots = win_slots[committed]
                    c_ads = win_ads[committed]
                    c_prices = win_prices[committed].copy()
                    if cutoff is not None and c_slots.size:
                        # The exhausting impression bills at most the balance.
                        c_prices[-1] = min(c_prices[-1], cutoff[2])
                    c_uids = uids[c_slots]

                    pacing.record_spend_batch(c_ads, c_prices)
                    seen.set(c_ads, c_uids)
                    market_wins += int(next_pos - pos) - int(c_slots.size)
                    hour_uids.append(c_uids)
                    hour_ads.append(c_ads)
                    hour_prices.append(c_prices)
                    if cutoff is not None:
                        alive = pacing.alive_array()
                    chunk_span.set("wins", int(c_slots.size))
                    chunk_span.set("worker", "main")
                    pos = next_pos

            if not hour_uids:
                continue
            if sum(int(u.size) for u in hour_uids) == 0:
                continue
            self._record_hour(
                insights, ad_ids, hour, hour_uids, hour_ads, hour_prices,
                gt_matrix, gt_cell, age_gender_codes, home_dma_codes,
            )

        return DeliveryResult(
            insights=insights,
            total_slots=total_slots,
            market_wins=market_wins,
            total_spend=insights.total_spend(),
        )

    # -- parallel vectorized mode: threaded chunk workers ------------------

    def _commit_chunk(
        self, pacing, cand, outcome, competing, uids, alive_snapshot,
        hour_uids, hour_ads, hour_prices,
    ) -> tuple[int, int]:
        """Settle one scored chunk against the live budget ledger.

        Runs on the main thread, in deterministic chunk order.  If the
        alive fleet shrank after the chunk was scored, the chunk is
        re-settled from its kept candidate matrix via
        :func:`resettle_dead` (same noise draw, dead rows masked), so the
        committed outcome depends only on the committed state before it —
        never on worker timing or the submission window.  Over-budget
        cutoffs truncate-and-resettle within the chunk exactly like the
        sequential engine.  Returns (wins committed, market wins).
        """
        n_chunk = int(uids.size)
        alive_used = alive_snapshot
        wins_committed = 0
        market = 0
        base = 0
        # The loop keeps only the unsettled tail of the outcome (columns
        # from ``base`` on): committed columns are never re-read, so the
        # re-settles after an exhaustion scan only what is left.
        w_tail = outcome.winner_indices
        p_tail = outcome.prices
        v_tail = outcome.winning_values
        while base < n_chunk:
            alive_now = pacing.alive_array()
            if not np.array_equal(alive_now, alive_used):
                sub = resettle_dead(
                    cand[:, base:],
                    BatchAuctionOutcome(
                        winner_indices=w_tail, prices=p_tail, winning_values=v_tail
                    ),
                    competing[base:],
                    alive_used & ~alive_now,
                )
                w_tail, p_tail, v_tail = (
                    sub.winner_indices, sub.prices, sub.winning_values
                )
                alive_used = alive_now
            win_rel = np.flatnonzero(w_tail >= 0)
            win_ads = w_tail[win_rel]
            win_prices = p_tail[win_rel]
            cutoff = find_cutoff(
                win_rel, win_ads, win_prices, pacing.remaining_array()
            )
            if cutoff is None:
                c_rel, c_ads = win_rel, win_ads
                c_prices = win_prices.copy()
                settled = int(w_tail.size)
            else:
                committed = win_rel <= cutoff[0]
                c_rel = win_rel[committed]
                c_ads = win_ads[committed]
                c_prices = win_prices[committed].copy()
                if c_rel.size:
                    # The exhausting impression bills at most the balance.
                    c_prices[-1] = min(c_prices[-1], cutoff[2])
                settled = cutoff[0] + 1
            pacing.record_spend_batch(c_ads, c_prices)
            hour_uids.append(uids[base + c_rel])
            hour_ads.append(c_ads)
            hour_prices.append(c_prices)
            wins_committed += int(c_rel.size)
            market += settled - int(c_rel.size)
            base += settled
            if cutoff is None:
                break
            # Loop: the spend we just recorded exhausted an ad, so the
            # next pass re-settles the remaining columns with the
            # shrunken fleet (reusing the chunk's noise draw) before
            # committing the tail.
            w_tail = w_tail[settled:]
            p_tail = p_tail[settled:]
            v_tail = v_tail[settled:]
        return wins_committed, market

    def _run_parallel(
        self, deliverable, ad_ids, pacing, ear_matrix, gt_matrix, quality_vec, eligibility
    ) -> DeliveryResult:
        n_users = len(self._universe)
        obs_cell = self._universe.obs_cell_array
        gt_cell = self._universe.gt_cell_array
        rates = self._universe.activity_rates
        home_dma_codes = self._universe.home_dma_code_array
        age_gender_codes = obs_cell // CELLS_PER_AGE_GENDER
        n_ads = len(deliverable)

        insights = InsightsStore()
        total_slots = 0
        market_wins = 0
        seen = PackedBitMatrix(n_ads, n_users)

        with ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="delivery-worker"
        ) as pool:
            for hour in range(self._hours):
                with self._tracer.span("delivery.pacing", {"hour": hour}):
                    pacing.control_all(float(hour))
                    alive_hour = pacing.alive_array()
                if not alive_hour.any():
                    break
                multipliers = pacing.multiplier_array()
                values = (
                    multipliers[:, None] * self._bid
                ) * ear_matrix + quality_vec[:, None]
                # The kernel scores in single precision; the budget-driven
                # chunk sizing below keeps the double-precision table.
                score_values = values.astype(np.float32)

                slot_users, slot_cells, competing = self._hour_traffic(
                    hour, rates, obs_cell
                )
                n_slots = int(slot_users.size)
                if n_slots == 0:
                    continue
                total_slots += n_slots

                # Fixed schedule for the hour: chunk boundaries from the
                # hour-start ledger, one spawned RNG stream per chunk
                # (SFC64 — the fastest BitGenerator numpy ships; the
                # sequential path keeps the engine's own generator).
                # Nothing below depends on the pool size, so any
                # ``workers>1`` run commits bit-identical results.
                chunk = max(
                    chunk_limit(
                        pacing.remaining_array(), alive_hour, values,
                        self._repeat_affinity,
                    ),
                    _PARALLEL_CHUNK,
                )
                n_chunks = -(-n_slots // chunk)
                entropy = int(self._rng.integers(np.iinfo(np.int64).max))
                streams = np.random.SeedSequence(entropy).spawn(n_chunks)

                hour_uids: list[np.ndarray] = []
                hour_ads: list[np.ndarray] = []
                hour_prices: list[np.ndarray] = []
                pending: deque = deque()
                next_chunk = 0
                window = max(2 * self._workers, 2)

                while next_chunk < n_chunks or pending:
                    while next_chunk < n_chunks and len(pending) < window:
                        lo = next_chunk * chunk
                        hi = min(lo + chunk, n_slots)
                        if not pacing.alive_array().any():
                            # Whole fleet exhausted: the market takes every
                            # remaining slot; no point scoring them.
                            market_wins += n_slots - lo
                            next_chunk = n_chunks
                            break
                        # A fresh snapshot is an optimisation, not a
                        # dependency: the commit re-settles the chunk
                        # whenever the fleet shrank after scoring.
                        alive_snapshot = pacing.alive_array()
                        future = pool.submit(
                            _score_chunk_task,
                            (
                                score_values, slot_cells[lo:hi],
                                slot_users[lo:hi], competing[lo:hi],
                                np.random.Generator(
                                    np.random.SFC64(streams[next_chunk])
                                ),
                                seen, eligibility, alive_snapshot,
                                self._noise_sigma, self._repeat_affinity,
                            ),
                        )
                        pending.append((lo, hi, alive_snapshot, future))
                        next_chunk += 1
                    if not pending:
                        break
                    lo, hi, alive_snapshot, future = pending.popleft()
                    worker_name, cand, outcome = future.result()
                    with self._tracer.span(
                        "delivery.auction_chunk",
                        {"hour": hour, "slots": int(hi - lo), "worker": worker_name},
                    ) as chunk_span:
                        wins, market = self._commit_chunk(
                            pacing, cand, outcome, competing[lo:hi],
                            slot_users[lo:hi], alive_snapshot,
                            hour_uids, hour_ads, hour_prices,
                        )
                        market_wins += market
                        chunk_span.set("wins", wins)

                if not hour_uids:
                    continue
                if sum(int(u.size) for u in hour_uids) == 0:
                    continue
                # The seen store is read-only while chunks are in flight;
                # the hour's re-exposure marks land between hours.
                w_uids, w_ads = self._record_hour(
                    insights, ad_ids, hour, hour_uids, hour_ads, hour_prices,
                    gt_matrix, gt_cell, age_gender_codes, home_dma_codes,
                )
                seen.set(w_ads, w_uids)

        return DeliveryResult(
            insights=insights,
            total_slots=total_slots,
            market_wins=market_wins,
            total_spend=insights.total_spend(),
        )
