"""The 24-hour event-driven delivery engine.

Ties the platform together (§2.1 "Ad delivery"): browsing sessions arrive
per user according to the activity model; each session opens one ad slot;
an auction runs among the eligible study ads (total value = paced bid ×
EAR + quality) against the background market; the winner pays second
price, is charged against its pacing budget, and the impression is
recorded into insights with its mobility-attributed region; the user then
clicks with the *ground-truth* probability (the click outcome feeds
reporting, not the pretrained EAR — a 24-hour run does not retrain the
model, matching how the audited platform behaves within one campaign).

Scoring is vectorised over user cells: an ad's total value depends on the
user only through the observed cell, so each control interval rebuilds a
small (n_ads × 24) value matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeliveryError
from repro.geo.mobility import MobilityModel
from repro.platform.audience import AudienceStore
from repro.platform.auction import run_auction
from repro.platform.campaign import Ad, AdAccount
from repro.platform.cells import (
    N_GT_CELLS,
    N_OBSERVED_CELLS,
    gt_cell_index,
    observed_cell_index,
)
from repro.platform.competition import CompetitionModel
from repro.platform.ear import EarModel
from repro.platform.engagement import EngagementModel
from repro.platform.insights import AdInsights, InsightsStore
from repro.platform.objectives import objective_scores
from repro.platform.pacing import PacingController
from repro.platform.quality import AdQualityModel
from repro.population.activity import DIURNAL_WEIGHTS, diurnal_weight
from repro.population.universe import UserUniverse

__all__ = ["DeliveryEngine", "DeliveryResult"]


@dataclass(frozen=True, slots=True)
class DeliveryResult:
    """Outcome of one 24-hour delivery run."""

    insights: InsightsStore
    total_slots: int
    market_wins: int
    total_spend: float

    def for_ad(self, ad_id: str) -> AdInsights:
        """Insights of one ad."""
        return self.insights.for_ad(ad_id)


class DeliveryEngine:
    """Runs a set of approved ads for one simulated day.

    Parameters
    ----------
    universe, audience_store, account:
        The world the ads deliver into and the account owning them.
    ear:
        The platform's trained estimated-action-rate model.
    engagement:
        Ground truth used only to sample click outcomes.
    competition:
        Background market bids.
    mobility:
        Region attribution of impressions.
    rng:
        Randomness source.
    advertiser_bid:
        The auto-bid value (dollars per click) the platform bids on the
        advertiser's behalf before pacing; the controller scales it.
    quality:
        Ad quality model (defaults to a fresh one).
    hours:
        Delivery horizon (the paper's runs are exactly 24 hours).
    value_noise_sigma:
        Log-scale of per-(slot, ad) idiosyncratic noise multiplied into
        total values.  Real rankers condition on thousands of per-user
        features our cell-level EAR cannot represent; without this term
        the argmax allocation would amplify every cell-level difference
        into near-total separation.  Setting it to 0 recovers the
        deterministic ranker (an ablation).
    repeat_affinity:
        Multiplicative value boost for an ad on a user it has already
        been shown to.  Real rankers strongly favour re-exposure (they
        have a revealed-interest signal), which is why reported reach is
        well below impressions — the paper's Campaign 1 averaged ~1.5
        impressions per reached user.  Set to 1.0 to disable.
    """

    def __init__(
        self,
        universe: UserUniverse,
        audience_store: AudienceStore,
        account: AdAccount,
        *,
        ear: EarModel,
        engagement: EngagementModel,
        competition: CompetitionModel,
        mobility: MobilityModel,
        rng: np.random.Generator,
        advertiser_bid: float = 0.30,
        quality: AdQualityModel | None = None,
        hours: int = 24,
        value_noise_sigma: float = 0.5,
        repeat_affinity: float = 2.5,
    ) -> None:
        if advertiser_bid <= 0:
            raise DeliveryError("advertiser_bid must be positive")
        if hours <= 0:
            raise DeliveryError("hours must be positive")
        if value_noise_sigma < 0:
            raise DeliveryError("value_noise_sigma must be non-negative")
        if repeat_affinity < 1.0:
            raise DeliveryError("repeat_affinity must be at least 1.0")
        self._universe = universe
        self._audiences = audience_store
        self._account = account
        self._ear = ear
        self._engagement = engagement
        self._competition = competition
        self._mobility = mobility
        self._rng = rng
        self._bid = advertiser_bid
        self._quality = quality or AdQualityModel()
        self._hours = hours
        self._noise_sigma = value_noise_sigma
        self._repeat_affinity = repeat_affinity

    def run(self, ads: list[Ad]) -> DeliveryResult:
        """Deliver ``ads`` for one day and return the insights.

        Raises
        ------
        DeliveryError
            If no ad is approved for delivery.
        """
        deliverable = [ad for ad in ads if ad.is_deliverable()]
        if not deliverable:
            raise DeliveryError("no approved ads to deliver")
        n_ads = len(deliverable)
        users = self._universe.users
        n_users = len(users)

        # --- static per-ad structures -----------------------------------
        # The pacing plan follows the diurnal traffic curve over a full
        # day; shorter test horizons keep the uniform plan.
        plan = list(DIURNAL_WEIGHTS) if self._hours == 24 else None
        pacing = PacingController(horizon_hours=float(self._hours), plan_weights=plan)
        ear_matrix = np.empty((n_ads, N_OBSERVED_CELLS))
        gt_matrix = np.empty((n_ads, N_GT_CELLS))
        quality_vec = np.empty(n_ads)
        members_map = self._audiences.members_map()
        eligibility = np.zeros((n_ads, n_users), dtype=bool)
        for i, ad in enumerate(deliverable):
            adset = self._account.adset_of(ad)
            image = ad.creative.effective_image()
            job = ad.creative.job_category()
            objective = self._account.campaign_of(ad).objective
            ear_matrix[i] = objective_scores(
                self._ear.score_vector(image, job), objective
            )
            gt_matrix[i] = self._engagement.probability_vector(image, job)
            quality_vec[i] = self._quality.score(ad.creative)
            # Start below equilibrium so early hours do not burn the budget
            # at inflated self-competition prices; the controller raises the
            # multiplier if the ad falls behind plan.
            pacing.register(ad.ad_id, adset.daily_budget_dollars, initial_multiplier=0.3)
            eligible = adset.targeting.eligible_user_ids(self._universe, members_map)
            if not eligible:
                raise DeliveryError(f"ad {ad.ad_id} targets an empty audience")
            eligibility[i, list(eligible)] = True

        obs_cell = np.array([observed_cell_index(u) for u in users])
        gt_cell = np.array([gt_cell_index(u) for u in users])
        rates = np.array([u.activity_rate for u in users])

        insights = InsightsStore()
        total_slots = 0
        market_wins = 0
        alive = np.ones(n_ads, dtype=bool)
        neg_inf = float("-inf")
        # ads already shown per user (revealed-interest re-exposure boost)
        shown_to: dict[int, list[int]] = {}

        for hour in range(self._hours):
            pacing.control_all(float(hour))
            multipliers = np.array([pacing.multiplier(ad.ad_id) for ad in deliverable])
            alive = np.array([pacing.can_bid(ad.ad_id) for ad in deliverable])
            if not alive.any():
                break
            # total value per (ad, observed cell) at this hour's pacing
            values = (multipliers[:, None] * self._bid) * ear_matrix + quality_vec[:, None]

            session_counts = self._rng.poisson(
                rates * (diurnal_weight(hour % 24) / 24.0)
            )
            slot_users = np.repeat(np.arange(n_users), session_counts)
            self._rng.shuffle(slot_users)
            if slot_users.size == 0:
                continue
            competing = self._competition.sample_many(obs_cell[slot_users])
            total_slots += int(slot_users.size)

            for slot_idx in range(slot_users.size):
                uid = int(slot_users[slot_idx])
                cell = int(obs_cell[uid])
                candidate = np.where(
                    eligibility[:, uid] & alive, values[:, cell], neg_inf
                )
                if self._noise_sigma > 0:
                    candidate = candidate * np.exp(
                        self._noise_sigma * self._rng.standard_normal(n_ads)
                    )
                if self._repeat_affinity > 1.0:
                    seen = shown_to.get(uid)
                    if seen:
                        candidate[seen] *= self._repeat_affinity
                outcome = run_auction(candidate, float(competing[slot_idx]))
                if outcome.winner_index is None:
                    market_wins += 1
                    continue
                winner = outcome.winner_index
                ad = deliverable[winner]
                # The last impression cannot push spend past the budget:
                # the platform bills at most the remaining balance.
                price = min(outcome.price, pacing.state(ad.ad_id).remaining)
                pacing.record_spend(ad.ad_id, price)
                if not pacing.can_bid(ad.ad_id):
                    alive[winner] = False
                user = users[uid]
                location = self._mobility.locate(user.home_state, user.home_dma)
                clicked = self._rng.random() < gt_matrix[winner, gt_cell[uid]]
                insights.for_ad(ad.ad_id).record(
                    user, location.state, location.dma, price, clicked, hour=hour
                )
                shown_to.setdefault(uid, []).append(winner)

        # Ads that never won still get an (empty) insights row, as the real
        # reporting API would show zeros rather than a missing ad.
        for ad in deliverable:
            insights.for_ad(ad.ad_id)
        return DeliveryResult(
            insights=insights,
            total_slots=total_slots,
            market_wins=market_wins,
            total_spend=insights.total_spend(),
        )
