"""The simulated ad-delivery platform ("Bluebook").

This package is the substitute for the black box the paper audits.  It
implements the full ad-platform pipeline described in the paper's §2.1:

* **ad creation** — accounts, campaigns, ad sets, ads with creatives
  (:mod:`repro.platform.campaign`), targeting specs and Custom Audiences
  (:mod:`repro.platform.targeting`, :mod:`repro.platform.audience`), and
  an ad review step with the Special Ad Categories flow
  (:mod:`repro.platform.review`);
* **ad delivery** — the total-value auction
  ``Advertiser Bid × Estimated Action Rate + Ad Quality``
  (:mod:`repro.platform.auction`), a *learned* estimated-action-rate
  model trained on historical engagement logs (:mod:`repro.platform.ear`),
  ad quality scoring (:mod:`repro.platform.quality`), budget pacing
  (:mod:`repro.platform.pacing`), competing background advertisers with
  demographically uneven prices (:mod:`repro.platform.competition`), and
  a 24-hour event-driven delivery engine (:mod:`repro.platform.delivery`);
* **reporting** — per-ad insights with Facebook's age/gender and region
  breakdowns (:mod:`repro.platform.insights`).

Ground truth lives in :mod:`repro.platform.engagement`: a society model of
who actually engages with what.  The platform's EAR model never sees it —
it only sees logged clicks — and it never sees user race, only the
behavioural proxy cluster.  The paper's measured skews must *emerge* from
this training loop; nothing in the delivery path hard-codes them.
"""

from repro.platform.audience import AudienceStore, CustomAudience
from repro.platform.campaign import (
    Ad,
    AdAccount,
    AdCreative,
    AdSet,
    Campaign,
    Objective,
    SpecialAdCategory,
)
from repro.platform.competition import CompetitionModel
from repro.platform.delivery import DeliveryEngine, DeliveryResult
from repro.platform.ear import EarModel, EngagementLogger
from repro.platform.engagement import EngagementModel, EngagementParams
from repro.platform.insights import AdInsights, InsightsStore
from repro.platform.pacing import PacingController
from repro.platform.quality import AdQualityModel
from repro.platform.review import AdReviewSystem, ReviewDecision
from repro.platform.targeting import TargetingSpec

__all__ = [
    "Ad",
    "AdAccount",
    "AdCreative",
    "AdInsights",
    "AdQualityModel",
    "AdReviewSystem",
    "AdSet",
    "AudienceStore",
    "Campaign",
    "CompetitionModel",
    "CustomAudience",
    "DeliveryEngine",
    "DeliveryResult",
    "EarModel",
    "EngagementLogger",
    "EngagementModel",
    "EngagementParams",
    "InsightsStore",
    "Objective",
    "PacingController",
    "ReviewDecision",
    "SpecialAdCategory",
    "TargetingSpec",
]
