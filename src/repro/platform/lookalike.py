"""Lookalike Audience expansion (extension).

The paper's discussion builds on the authors' companion finding
(Sapiezynski et al., "Algorithms that 'Don't See Color'") that audience-
expansion products reproduce the demographics of their seed audience even
though they never observe protected attributes.  This module implements
the product: given a *seed* Custom Audience, the platform ranks every
other user by similarity of their **platform-observable** features to the
seed population and returns the closest ``expansion_ratio`` fraction.

Feature space (deliberately race-free, like everything the platform
sees): age bucket one-hot, gender, interest cluster, ZIP-poverty tier,
activity rate.  Because cluster and poverty are correlated with race, a
racially skewed seed produces a racially skewed lookalike — measurable
with the voter ground truth, exactly as in the companion paper.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AudienceError
from repro.population.universe import UserUniverse
from repro.population.user import InterestCluster, PlatformUser
from repro.types import AgeBucket, Gender

__all__ = ["lookalike_features", "lookalike_features_matrix", "build_lookalike"]

_BUCKETS = list(AgeBucket)


def lookalike_features(user: PlatformUser) -> np.ndarray:
    """Platform-observable feature vector used for similarity ranking."""
    bucket_onehot = [1.0 if user.age_bucket is b else 0.0 for b in _BUCKETS]
    return np.array(
        [
            *bucket_onehot,
            1.0 if user.gender is Gender.FEMALE else 0.0,
            1.0 if user.interest_cluster is InterestCluster.BETA else 0.0,
            1.0 if user.high_poverty else 0.0,
            min(user.activity_rate / 5.0, 1.0),
        ]
    )


def lookalike_features_matrix(universe: UserUniverse) -> np.ndarray:
    """Whole-universe feature matrix, one :func:`lookalike_features` row
    per user, assembled from the columnar storage without materialising
    user objects (pinned row-for-row against the scalar builder in
    tests)."""
    columns = universe.columns
    n = len(columns)
    features = np.zeros((n, len(_BUCKETS) + 4))
    features[np.arange(n), columns.age_bucket_codes().astype(np.intp)] = 1.0
    col = len(_BUCKETS)
    features[:, col] = columns.gender == 1  # GENDER_ORDER code 1 = FEMALE
    features[:, col + 1] = columns.interest_cluster == 1  # CLUSTER code 1 = BETA
    features[:, col + 2] = columns.high_poverty
    features[:, col + 3] = np.minimum(
        columns.activity_rate.astype(np.float64) / 5.0, 1.0
    )
    return features


def build_lookalike(
    universe: UserUniverse,
    seed_user_ids: set[int],
    *,
    expansion_ratio: float = 0.1,
) -> frozenset[int]:
    """Select the non-seed users most similar to the seed population.

    Parameters
    ----------
    universe:
        The platform user universe.
    seed_user_ids:
        The seed Custom Audience's members.
    expansion_ratio:
        Fraction of the (non-seed) universe to return, mirroring the real
        product's 1%..10%-of-country knob.

    Returns the selected user ids.  Similarity is the Mahalanobis-lite
    distance to the seed centroid (per-feature standardised by the
    universe's spread), so rare traits weigh as much as common ones.
    """
    if not seed_user_ids:
        raise AudienceError("lookalike needs a non-empty seed audience")
    if not 0.0 < expansion_ratio <= 1.0:
        raise AudienceError("expansion_ratio must be in (0, 1]")

    features = lookalike_features_matrix(universe)
    spread = features.std(axis=0)
    spread[spread == 0] = 1.0
    seed_mask = np.zeros(len(universe), dtype=bool)
    seed_list = [uid for uid in seed_user_ids if 0 <= uid < len(universe)]
    if not seed_list:
        raise AudienceError("no seed user id exists in this universe")
    seed_mask[seed_list] = True

    centroid = features[seed_mask].mean(axis=0)
    distances = np.linalg.norm((features - centroid) / spread, axis=1)
    distances[seed_mask] = np.inf  # the product excludes the seed itself

    n_candidates = int(np.count_nonzero(~seed_mask))
    k = max(1, int(round(n_candidates * expansion_ratio)))
    chosen = np.argpartition(distances, k - 1)[:k]
    return frozenset(int(i) for i in chosen)
