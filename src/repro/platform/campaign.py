"""Ad objects: accounts, campaigns, ad sets, ads, creatives.

Mirrors the Facebook Marketing API object hierarchy the paper's
experiments drive: an *ad account* owns *campaigns* (which set the
objective), campaigns own *ad sets* (which set budget and targeting), and
ad sets own *ads* (which carry the creative).  The paper's campaigns
always vary only the creative image within a run (§3.2).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import BudgetError, ValidationError
from repro.images.composite import JobAdImage
from repro.images.features import ImageFeatures
from repro.platform.targeting import TargetingSpec

__all__ = [
    "Objective",
    "SpecialAdCategory",
    "AdCreative",
    "Ad",
    "AdSet",
    "Campaign",
    "AdAccount",
]


class Objective(enum.Enum):
    """Campaign objectives (paper §2.1; the study always uses Traffic)."""

    TRAFFIC = "LINK_CLICKS"
    CONVERSIONS = "CONVERSIONS"
    AWARENESS = "REACH"


class SpecialAdCategory(enum.Enum):
    """Facebook's Special Ad Categories (housing / employment / credit).

    Ads in these categories go through a restricted flow: several
    targeting options (age, gender limits) are disallowed (§2.2, the NFHA
    settlement), and the paper always flags its §6 employment ads (§4.1).
    """

    NONE = "NONE"
    HOUSING = "HOUSING"
    EMPLOYMENT = "EMPLOYMENT"
    CREDIT = "CREDIT"


@dataclass(frozen=True, slots=True)
class AdCreative:
    """The creative: text, image, and destination link.

    ``image`` is either a plain :class:`ImageFeatures` (portrait ads) or a
    :class:`JobAdImage` (face composited on a job background, §6).
    """

    headline: str
    body: str
    destination_url: str
    image: ImageFeatures | JobAdImage

    def __post_init__(self) -> None:
        if not self.headline or not self.destination_url:
            raise ValidationError("creative needs a headline and a destination URL")

    def effective_image(self) -> ImageFeatures:
        """The feature vector the delivery models see."""
        if isinstance(self.image, JobAdImage):
            return self.image.effective_features()
        return self.image

    def job_category(self) -> str | None:
        """Job background category, or None for portrait-only creatives."""
        if isinstance(self.image, JobAdImage):
            return self.image.job_category
        return None


@dataclass(slots=True)
class Ad:
    """One ad: creative + link to its ad set.  Mutable review status."""

    ad_id: str
    adset_id: str
    name: str
    creative: AdCreative
    review_status: str = "PENDING"

    def is_deliverable(self) -> bool:
        """Only approved ads enter the auction."""
        return self.review_status == "APPROVED"


@dataclass(slots=True)
class AdSet:
    """Budget + targeting container for one or more ads."""

    adset_id: str
    campaign_id: str
    name: str
    daily_budget_cents: int
    targeting: TargetingSpec

    def __post_init__(self) -> None:
        if self.daily_budget_cents <= 0:
            raise BudgetError(f"daily budget must be positive, got {self.daily_budget_cents}")

    @property
    def daily_budget_dollars(self) -> float:
        """Budget in dollars (the paper quotes $2.00–$3.50 per ad)."""
        return self.daily_budget_cents / 100.0


@dataclass(slots=True)
class Campaign:
    """Objective container."""

    campaign_id: str
    account_id: str
    name: str
    objective: Objective
    special_ad_category: SpecialAdCategory = SpecialAdCategory.NONE


@dataclass(slots=True)
class AdAccount:
    """An advertiser account; owns all objects and allocates their ids.

    ``created_year`` matters to the review model: the paper ran the
    "real-world" §6 campaign from a 2007-vintage account and everything
    else from a 2019 account (Table 2 caption); older accounts see less
    review friction.
    """

    account_id: str
    created_year: int = 2019
    campaigns: dict[str, Campaign] = field(default_factory=dict)
    adsets: dict[str, AdSet] = field(default_factory=dict)
    ads: dict[str, Ad] = field(default_factory=dict)
    _id_counter: itertools.count = field(default_factory=itertools.count, repr=False)

    def create_campaign(
        self,
        name: str,
        objective: Objective,
        *,
        special_ad_category: SpecialAdCategory = SpecialAdCategory.NONE,
    ) -> Campaign:
        """Create and register a campaign."""
        campaign = Campaign(
            campaign_id=f"camp_{self.account_id}_{next(self._id_counter)}",
            account_id=self.account_id,
            name=name,
            objective=objective,
            special_ad_category=special_ad_category,
        )
        self.campaigns[campaign.campaign_id] = campaign
        return campaign

    def create_adset(
        self,
        campaign: Campaign,
        name: str,
        daily_budget_cents: int,
        targeting: TargetingSpec,
    ) -> AdSet:
        """Create and register an ad set under ``campaign``."""
        if campaign.campaign_id not in self.campaigns:
            raise ValidationError(f"unknown campaign {campaign.campaign_id}")
        adset = AdSet(
            adset_id=f"as_{self.account_id}_{next(self._id_counter)}",
            campaign_id=campaign.campaign_id,
            name=name,
            daily_budget_cents=daily_budget_cents,
            targeting=targeting,
        )
        self.adsets[adset.adset_id] = adset
        return adset

    def create_ad(self, adset: AdSet, name: str, creative: AdCreative) -> Ad:
        """Create and register an ad under ``adset`` (review still pending)."""
        if adset.adset_id not in self.adsets:
            raise ValidationError(f"unknown ad set {adset.adset_id}")
        ad = Ad(
            ad_id=f"ad_{self.account_id}_{next(self._id_counter)}",
            adset_id=adset.adset_id,
            name=name,
            creative=creative,
        )
        self.ads[ad.ad_id] = ad
        return ad

    def adset_of(self, ad: Ad) -> AdSet:
        """The ad set an ad belongs to."""
        return self.adsets[ad.adset_id]

    def campaign_of(self, ad: Ad) -> Campaign:
        """The campaign an ad belongs to."""
        return self.campaigns[self.adsets[ad.adset_id].campaign_id]
