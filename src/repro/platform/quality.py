"""Ad quality scoring.

The third term of the total-value equation: "a measure of whether the ad
is scammy, clickbait, or contains low-quality images" (§2.1).  All of the
paper's ads are legitimate and near-identical in quality, so this term is
deliberately small — but it exists, is exercised, and can be inflated in
tests to verify the auction actually adds it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.platform.campaign import AdCreative

__all__ = ["AdQualityModel"]


class AdQualityModel:
    """Deterministic quality score for a creative.

    Scores are in value units (same scale as ``bid × EAR``).  Components:

    * a small base for carrying an image of a person (engagement-bait
      detection would flag person-free clickbait collages instead);
    * a penalty for very long headlines (low-quality signal);
    * a penalty for extreme lighting (an over/under-exposed image).
    """

    def __init__(self, *, scale: float = 0.0005) -> None:
        if scale < 0:
            raise ValidationError("scale must be non-negative")
        self._scale = scale

    def score(self, creative: AdCreative) -> float:
        """Quality score of one creative."""
        image = creative.effective_image()
        value = 1.0 if image.has_person else 0.5
        if len(creative.headline) > 80:
            value -= 0.3
        value -= 0.4 * abs(image.lighting - 0.5)
        return self._scale * float(np.clip(value, 0.0, 1.5))
