"""Ad review: policy checks and the Special Ad Categories flow.

Every ad passes review before delivering.  Two paper-relevant behaviours:

* **Special Ad Categories** (housing / employment / credit) may not use
  age or gender targeting (the NFHA-settlement restrictions, §2.2); a
  violating combination is rejected deterministically with a policy
  reason.
* **Opaque automated rejections** — in Appendix A, Facebook rejected over
  95% of the resubmitted ads, and still rejected 44 after appeal, "despite
  all 100 of these ads being run previously" and many of the same images
  running concurrently in the other copy.  We model this as a stochastic
  repeat-creative flag whose rate jumps when the same account resubmits a
  large batch of near-duplicate creatives; an appeal pass clears most but
  not all flags.  Accounts with long history (the 2007 account of §6)
  see a lower flag rate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.platform.campaign import Ad, AdAccount, SpecialAdCategory

__all__ = ["ReviewDecision", "ReviewOutcome", "AdReviewSystem"]


class ReviewDecision(enum.Enum):
    """Terminal review states."""

    APPROVED = "APPROVED"
    REJECTED = "REJECTED"


@dataclass(frozen=True, slots=True)
class ReviewOutcome:
    """One ad's review result with the (possibly opaque) reason.

    ``policy`` marks deterministic policy violations (not appealable), as
    opposed to the opaque stochastic flags (appealable).
    """

    ad_id: str
    decision: ReviewDecision
    reason: str
    policy: bool = False


#: Creative-text phrases that deterministically fail review in regulated
#: categories: explicit demographic preferences are illegal in housing /
#: employment / credit advertising (§2.2's legal background).
PROHIBITED_PHRASES: tuple[str, ...] = (
    "whites only",
    "no blacks",
    "men only",
    "women only",
    "young people only",
    "christians only",
    "no families",
    "able-bodied only",
)


class AdReviewSystem:
    """Reviews ads submitted under an account.

    Parameters
    ----------
    rng:
        Randomness source for the stochastic flags.
    base_rejection_rate:
        Probability that a fresh, compliant ad is flagged anyway.
    resubmission_rejection_rate:
        Flag probability once the account has already run the same
        creative batch before (the Appendix-A regime).
    appeal_clear_rate:
        Probability that an appeal clears a stochastic flag.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        base_rejection_rate: float = 0.01,
        resubmission_rejection_rate: float = 0.95,
        appeal_clear_rate: float = 0.77,
    ) -> None:
        for name, rate in (
            ("base_rejection_rate", base_rejection_rate),
            ("resubmission_rejection_rate", resubmission_rejection_rate),
            ("appeal_clear_rate", appeal_clear_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1]")
        self._rng = rng
        self._base_rate = base_rejection_rate
        self._resubmission_rate = resubmission_rejection_rate
        self._appeal_clear = appeal_clear_rate
        self._outcomes: dict[str, ReviewOutcome] = {}

    def review(
        self,
        account: AdAccount,
        ad: Ad,
        *,
        resubmission: bool = False,
    ) -> ReviewOutcome:
        """Review one ad and update its status in place."""
        campaign = account.campaign_of(ad)
        adset = account.adset_of(ad)
        if (
            campaign.special_ad_category is not SpecialAdCategory.NONE
            and adset.targeting.uses_restricted_options()
        ):
            ad.review_status = ReviewDecision.REJECTED.value
            outcome = ReviewOutcome(
                ad_id=ad.ad_id,
                decision=ReviewDecision.REJECTED,
                reason=(
                    "Special Ad Category ads cannot limit the audience by "
                    "age or gender"
                ),
                policy=True,
            )
            self._outcomes[ad.ad_id] = outcome
            return outcome
        creative_text = f"{ad.creative.headline} {ad.creative.body}".lower()
        for phrase in PROHIBITED_PHRASES:
            if phrase in creative_text:
                ad.review_status = ReviewDecision.REJECTED.value
                outcome = ReviewOutcome(
                    ad_id=ad.ad_id,
                    decision=ReviewDecision.REJECTED,
                    reason=(
                        "Ads may not express a preference for or against "
                        "people based on protected characteristics"
                    ),
                    policy=True,
                )
                self._outcomes[ad.ad_id] = outcome
                return outcome
        rate = self._resubmission_rate if resubmission else self._base_rate
        # Seasoned accounts accumulate trust; the 2007-vintage account of
        # §6 halves its flag probability.
        if account.created_year <= 2010:
            rate *= 0.5
        if self._rng.random() < rate:
            ad.review_status = ReviewDecision.REJECTED.value
            outcome = ReviewOutcome(
                ad_id=ad.ad_id,
                decision=ReviewDecision.REJECTED,
                reason="This ad does not comply with our Advertising Policies",
            )
        else:
            ad.review_status = ReviewDecision.APPROVED.value
            outcome = ReviewOutcome(
                ad_id=ad.ad_id, decision=ReviewDecision.APPROVED, reason="approved"
            )
        self._outcomes[ad.ad_id] = outcome
        return outcome

    def appeal(self, ad: Ad) -> ReviewOutcome:
        """Appeal a stochastic rejection; clears with ``appeal_clear_rate``.

        Policy rejections (Special Ad Category violations) are always
        upheld — fix the targeting instead.
        """
        if ad.review_status != ReviewDecision.REJECTED.value:
            raise ValidationError(f"ad {ad.ad_id} is not rejected")
        previous = self._outcomes.get(ad.ad_id)
        if previous is not None and previous.policy:
            return previous
        if self._rng.random() < self._appeal_clear:
            ad.review_status = ReviewDecision.APPROVED.value
            outcome = ReviewOutcome(
                ad_id=ad.ad_id,
                decision=ReviewDecision.APPROVED,
                reason="approved after appeal",
            )
        else:
            outcome = ReviewOutcome(
                ad_id=ad.ad_id,
                decision=ReviewDecision.REJECTED,
                reason="rejection upheld after review",
            )
        self._outcomes[ad.ad_id] = outcome
        return outcome
