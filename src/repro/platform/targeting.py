"""Targeting specifications.

The paper's designs use two targeting mechanisms (§2.1): attribute
expressions and Custom Audiences.  Our spec supports the pieces the study
needs — one or more Custom Audiences, an optional age cap (Campaign 2
targets 45-or-younger), optional gender and state restriction — and
resolves to a concrete eligible-user set against a universe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TargetingError
from repro.population.columns import GENDER_CODES, STATE_CODES
from repro.population.universe import UserUniverse
from repro.types import Gender, State

__all__ = ["TargetingSpec"]


@dataclass(frozen=True, slots=True)
class TargetingSpec:
    """Who an ad set may deliver to.

    ``custom_audience_ids`` restrict delivery to users matched into any of
    the listed audiences (union).  ``age_min``/``age_max`` bound user age;
    ``genders``/``states`` restrict further.  An empty spec (no audiences,
    no bounds) is rejected — the platform requires *some* audience
    definition, mirroring the real API.
    """

    custom_audience_ids: tuple[str, ...] = ()
    age_min: int = 18
    age_max: int | None = None
    genders: tuple[Gender, ...] = ()
    states: tuple[State, ...] = ()

    def __post_init__(self) -> None:
        if self.age_min < 18:
            raise TargetingError("age_min below 18 is not allowed")
        if self.age_max is not None and self.age_max < self.age_min:
            raise TargetingError(
                f"age_max {self.age_max} below age_min {self.age_min}"
            )
        if not self.custom_audience_ids and self.age_max is None and not self.genders and not self.states:
            raise TargetingError("targeting spec selects everyone; refine it")

    def uses_restricted_options(self) -> bool:
        """True if the spec uses options banned for Special Ad Categories.

        After the NFHA settlement, housing/employment/credit ads cannot
        target by age or gender (§2.2); the review system rejects such
        combinations.
        """
        return self.age_max is not None or bool(self.genders)

    def accepts(self, user) -> bool:
        """Whether ``user`` satisfies the demographic filters.

        Custom Audience membership is checked by the delivery engine
        against the audience store; this predicate covers the rest.
        """
        age = user.demographics.age
        if age < self.age_min:
            return False
        if self.age_max is not None and age > self.age_max:
            return False
        if self.genders and user.gender not in self.genders:
            return False
        if self.states and user.home_state not in self.states:
            return False
        return True

    def eligible_mask(
        self, universe: UserUniverse, audience_members: dict[str, set[int]]
    ) -> np.ndarray:
        """Resolve the spec to a boolean per-user eligibility mask.

        The whole spec evaluates as array ops over the universe's columns
        — no per-user predicate calls — so targeting cost is independent
        of how selective the spec is.

        Parameters
        ----------
        universe:
            The platform user universe.
        audience_members:
            Mapping audience id → member user ids (from the audience
            store).

        Raises
        ------
        TargetingError
            If the spec references an unknown audience id, or an audience
            contains ids outside the universe.
        """
        columns = universe.columns
        n = len(columns)
        if self.custom_audience_ids:
            mask = np.zeros(n, dtype=bool)
            for audience_id in self.custom_audience_ids:
                members = audience_members.get(audience_id)
                if members is None:
                    raise TargetingError(f"unknown custom audience {audience_id!r}")
                if members:
                    ids = np.fromiter(members, dtype=np.intp, count=len(members))
                    if ids.min() < 0 or ids.max() >= n:
                        raise TargetingError(
                            f"audience {audience_id!r} contains user ids outside the universe"
                        )
                    mask[ids] = True
        else:
            mask = np.ones(n, dtype=bool)
        mask &= columns.age >= self.age_min
        if self.age_max is not None:
            mask &= columns.age <= self.age_max
        if self.genders:
            codes = [GENDER_CODES[g] for g in self.genders if g in GENDER_CODES]
            mask &= np.isin(columns.gender, codes)
        if self.states:
            codes = [STATE_CODES[s] for s in self.states]
            mask &= np.isin(columns.home_state, codes)
        return mask

    def eligible_user_ids(
        self, universe: UserUniverse, audience_members: dict[str, set[int]]
    ) -> set[int]:
        """Resolve the spec to concrete user ids (see :meth:`eligible_mask`)."""
        mask = self.eligible_mask(universe, audience_members)
        return set(np.flatnonzero(mask).tolist())
