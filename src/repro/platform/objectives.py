"""Objective-dependent ranking (extension beyond the paper's Traffic runs).

The paper runs everything with the Traffic objective "consistent with
prior work"; its §2.1 background lists two more — Conversions and
Awareness — and the prior work it builds on (Ali et al.) found that skew
grows with optimisation depth.  This module makes the delivery engine
objective-aware:

* **AWARENESS** ("show the ad to as many users as possible"): the
  platform does not condition on predicted engagement at all — every
  eligible user gets the same score (the mean predicted rate, so budgets
  pace comparably);
* **TRAFFIC**: the predicted click probability, as in the paper;
* **CONVERSIONS**: a deeper-funnel estimate.  Conversion data is ~10×
  sparser than click data, and platforms model it as a further
  probability conditioned on the click; the standard effect is a
  *sharper* posterior over users.  We use the calibrated power transform
  ``p^gamma / normaliser`` (gamma > 1), which preserves the ranking while
  widening relative differences — the stylised form of "optimising deeper
  in the funnel steers harder".

The extension bench asserts the resulting ordering of delivery skew:
AWARENESS < TRAFFIC < CONVERSIONS.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.platform.campaign import Objective

__all__ = ["objective_scores", "CONVERSION_SHARPNESS"]

#: Funnel-depth exponent for the Conversions objective.
CONVERSION_SHARPNESS = 1.6


def objective_scores(ear_scores: np.ndarray, objective: Objective) -> np.ndarray:
    """Transform per-cell EAR scores for the campaign objective.

    The output is normalised to preserve the mean predicted rate, so
    pacing economics are comparable across objectives and only the
    *steering* differs.
    """
    scores = np.asarray(ear_scores, dtype=float)
    if scores.size == 0 or np.any(scores < 0):
        raise ValidationError("ear scores must be a non-empty non-negative vector")
    mean = float(scores.mean())
    if objective is Objective.TRAFFIC:
        return scores
    if objective is Objective.AWARENESS:
        return np.full_like(scores, mean)
    if objective is Objective.CONVERSIONS:
        sharpened = scores**CONVERSION_SHARPNESS
        sharpened_mean = float(sharpened.mean())
        if sharpened_mean == 0:
            return sharpened
        return sharpened * (mean / sharpened_mean)
    raise ValidationError(f"unknown objective {objective}")
