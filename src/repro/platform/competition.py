"""Background advertiser competition.

Every slot our study ads compete for is also contested by the rest of the
advertiser market.  The paper stresses that demographic groups "may not be
equally 'priced' based on the targeting of other advertisers" (§3.2
footnote 5) — younger users are more heavily contested, for instance — so
the highest competing bid is drawn from a log-normal whose location varies
by the user's *observed* cell.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.platform.cells import OBSERVED_CELLS
from repro.population.user import InterestCluster
from repro.types import AgeBucket, Gender

__all__ = ["CompetitionModel"]

#: Relative price pressure per age bucket: younger users are contested by
#: many more advertisers (the paper's delivery skews old partly for this
#: reason).
_AGE_PRICE: dict[AgeBucket, float] = {
    AgeBucket.B18_24: 1.45,
    AgeBucket.B25_34: 1.30,
    AgeBucket.B35_44: 1.12,
    AgeBucket.B45_54: 0.95,
    AgeBucket.B55_64: 0.85,
    AgeBucket.B65_PLUS: 0.78,
}

_GENDER_PRICE: dict[Gender, float] = {
    Gender.FEMALE: 1.05,
    Gender.MALE: 1.0,
    Gender.UNKNOWN: 1.0,
}

#: ALPHA-cluster (majority-white-correlated) users are slightly more
#: contested, consistent with the balanced-audience intercepts sitting
#: above 50% Black in Tables 3/4.
_CLUSTER_PRICE: dict[InterestCluster, float] = {
    InterestCluster.ALPHA: 1.10,
    InterestCluster.BETA: 0.92,
}

#: High-poverty-ZIP users attract fewer commercial bids.
_POVERTY_PRICE: float = 0.99


class CompetitionModel:
    """Samples the highest competing bid for one ad slot.

    Parameters
    ----------
    rng:
        Randomness source.
    base_price:
        Median competing bid (in value units = dollars per impression)
        for a reference user.
    sigma:
        Log-scale dispersion of the bid distribution.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        base_price: float = 0.011,
        sigma: float = 0.45,
    ) -> None:
        if base_price <= 0:
            raise ValidationError("base_price must be positive")
        if sigma < 0:
            raise ValidationError("sigma must be non-negative")
        self._rng = rng
        self._sigma = sigma
        self._mu = {
            i: float(
                np.log(
                    base_price
                    * _AGE_PRICE[bucket]
                    * _GENDER_PRICE[gender]
                    * _CLUSTER_PRICE[cluster]
                    * (_POVERTY_PRICE if poverty else 1.0)
                )
            )
            for i, (bucket, gender, cluster, poverty) in enumerate(OBSERVED_CELLS)
        }
        self._mu_arr = np.array([self._mu[i] for i in range(len(OBSERVED_CELLS))])

    def expected_price(self, observed_cell: int) -> float:
        """Median competing bid in one observed cell."""
        return float(np.exp(self._mu[observed_cell]))

    def sample(self, observed_cell: int) -> float:
        """Draw the highest competing bid for one slot."""
        return float(np.exp(self._mu[observed_cell] + self._sigma * self._rng.standard_normal()))

    def sample_many(self, observed_cells: np.ndarray) -> np.ndarray:
        """Vectorised draw for a batch of slots."""
        mus = self._mu_arr[observed_cells]
        return np.exp(mus + self._sigma * self._rng.standard_normal(mus.shape[0]))
