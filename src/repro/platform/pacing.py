"""Budget pacing.

"The advertising platform places bids on the advertiser's behalf ... this
process is called bid pacing and is typically opaque to the advertiser"
(§2.1).  Our controller is a standard multiplicative feedback loop: each
ad starts with a bid multiplier, and at every control interval the
multiplier moves toward the value that would spend the remaining budget
evenly over the remaining time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BudgetError

__all__ = ["PacingController", "PacingState"]


@dataclass(slots=True)
class PacingState:
    """Pacing state of one ad."""

    budget: float
    spent: float = 0.0
    multiplier: float = 1.0
    exhausted: bool = False

    @property
    def remaining(self) -> float:
        """Unspent budget."""
        return max(self.budget - self.spent, 0.0)


class PacingController:
    """Multiplicative pacing over a fixed delivery horizon.

    Parameters
    ----------
    horizon_hours:
        Total delivery window (the paper's runs are exactly 24 hours).
    gain:
        Feedback strength per control step; higher reacts faster but
        oscillates more.
    min_multiplier, max_multiplier:
        Clamp range for the bid multiplier.
    """

    def __init__(
        self,
        *,
        horizon_hours: float = 24.0,
        gain: float = 0.35,
        min_multiplier: float = 0.05,
        max_multiplier: float = 20.0,
        plan_weights: list[float] | None = None,
    ) -> None:
        if horizon_hours <= 0:
            raise BudgetError("horizon must be positive")
        if not 0 < min_multiplier <= max_multiplier:
            raise BudgetError("invalid multiplier clamp range")
        self._horizon = horizon_hours
        self._gain = gain
        self._clamp = (min_multiplier, max_multiplier)
        self._states: dict[str, PacingState] = {}
        # Real pacing systems plan spend against *predicted traffic*, not
        # wall-clock: an even plan over a diurnal day would starve the
        # overnight trough and panic-bid at dawn.  ``plan_weights`` gives
        # the relative opportunity volume per unit time (e.g. the hourly
        # diurnal curve); None keeps the uniform plan.
        if plan_weights is not None:
            weights = np.asarray(plan_weights, dtype=float)
            if weights.ndim != 1 or weights.size < 2 or np.any(weights < 0):
                raise BudgetError("plan_weights must be a non-negative 1-d curve")
            total = float(weights.sum())
            if total <= 0:
                raise BudgetError("plan_weights must have positive mass")
            self._cumulative_plan = np.concatenate([[0.0], np.cumsum(weights) / total])
        else:
            self._cumulative_plan = None

    def register(self, ad_id: str, budget: float, *, initial_multiplier: float = 1.0) -> None:
        """Register an ad with its daily budget."""
        if budget <= 0:
            raise BudgetError(f"ad {ad_id}: budget must be positive")
        if ad_id in self._states:
            raise BudgetError(f"ad {ad_id} already registered")
        self._states[ad_id] = PacingState(budget=budget, multiplier=initial_multiplier)

    def state(self, ad_id: str) -> PacingState:
        """Pacing state of one ad."""
        try:
            return self._states[ad_id]
        except KeyError as exc:
            raise BudgetError(f"ad {ad_id} not registered with pacing") from exc

    def record_spend(self, ad_id: str, amount: float) -> None:
        """Charge ``amount`` to the ad; marks it exhausted at budget."""
        if amount < 0:
            raise BudgetError("spend must be non-negative")
        state = self.state(ad_id)
        state.spent += amount
        if state.spent >= state.budget:
            state.exhausted = True

    def can_bid(self, ad_id: str) -> bool:
        """Whether the ad still has budget to participate in auctions."""
        return not self.state(ad_id).exhausted

    def alive_mask(self, ad_ids: list[str]) -> np.ndarray:
        """Boolean can-bid mask over ``ad_ids``, in their given order.

        The controller is the single owner of liveness: the delivery
        engine queries this mask (per hour, or per chunk in the batched
        engine) instead of keeping its own copy that could drift from the
        spend ledger.
        """
        return np.array([not self.state(ad_id).exhausted for ad_id in ad_ids])

    def multiplier(self, ad_id: str) -> float:
        """Current bid multiplier of the ad."""
        return self.state(ad_id).multiplier

    def control_step(self, ad_id: str, elapsed_hours: float) -> float:
        """Run one pacing update; returns the new multiplier.

        Compares actual spend with the even-pacing plan at ``elapsed_hours``
        and adjusts the multiplier multiplicatively.
        """
        if not 0 <= elapsed_hours <= self._horizon:
            raise BudgetError(f"elapsed {elapsed_hours}h outside horizon {self._horizon}h")
        state = self.state(ad_id)
        if state.exhausted:
            return state.multiplier
        planned = state.budget * self._planned_fraction(elapsed_hours)
        if planned <= 0:
            return state.multiplier
        # error > 0 when behind plan -> raise bid; < 0 when ahead -> lower.
        error = (planned - state.spent) / max(planned, state.budget / self._horizon)
        factor = float(np.exp(self._gain * np.clip(error, -2.0, 2.0)))
        state.multiplier = float(np.clip(state.multiplier * factor, *self._clamp))
        return state.multiplier

    def _planned_fraction(self, elapsed_hours: float) -> float:
        """Share of the budget planned to be spent by ``elapsed_hours``."""
        if self._cumulative_plan is None:
            return elapsed_hours / self._horizon
        position = elapsed_hours / self._horizon * (self._cumulative_plan.size - 1)
        return float(np.interp(position, np.arange(self._cumulative_plan.size), self._cumulative_plan))

    def control_all(self, elapsed_hours: float) -> None:
        """Pacing update for every registered ad."""
        for ad_id in self._states:
            self.control_step(ad_id, elapsed_hours)

    def total_spend(self) -> float:
        """Aggregate spend across registered ads."""
        return sum(s.spent for s in self._states.values())
