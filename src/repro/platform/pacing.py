"""Budget pacing.

"The advertising platform places bids on the advertiser's behalf ... this
process is called bid pacing and is typically opaque to the advertiser"
(§2.1).  Our controller is a standard multiplicative feedback loop: each
ad starts with a bid multiplier, and at every control interval the
multiplier moves toward the value that would spend the remaining budget
evenly over the remaining time.

The controller is *columnar*: budgets, spend, multipliers and the
exhausted flags live in parallel NumPy arrays indexed by registration
order, so the many-campaign delivery engine reads whole-fleet state
(:meth:`~PacingController.multiplier_array`,
:meth:`~PacingController.remaining_array`,
:meth:`~PacingController.alive_array`) and commits whole-chunk spend
(:meth:`~PacingController.record_spend_batch`) without a Python loop
over ads.  The scalar API (:meth:`~PacingController.state`,
:meth:`~PacingController.record_spend`, ...) is a per-ad view over the
same arrays — there is one ledger, and both APIs produce bit-identical
float trajectories (``record_spend_batch`` sums each ad's prices with
the same pairwise ``ndarray.sum`` the scalar call sites used).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BudgetError

__all__ = ["PacingController", "PacingState"]


class PacingState:
    """Live per-ad view into the controller's columnar ledger.

    Reads and writes go straight to the owning controller's arrays, so a
    view never goes stale; ``state.spent``/``state.multiplier`` remain
    assignable for tests and ablations that poke the ledger directly.
    """

    __slots__ = ("_controller", "_index")

    def __init__(self, controller: "PacingController", index: int) -> None:
        self._controller = controller
        self._index = index

    @property
    def budget(self) -> float:
        """Daily budget (dollars)."""
        return float(self._controller._budget[self._index])

    @property
    def spent(self) -> float:
        """Dollars charged so far."""
        return float(self._controller._spent[self._index])

    @spent.setter
    def spent(self, value: float) -> None:
        self._controller._spent[self._index] = value

    @property
    def multiplier(self) -> float:
        """Current bid multiplier."""
        return float(self._controller._multiplier[self._index])

    @multiplier.setter
    def multiplier(self, value: float) -> None:
        self._controller._multiplier[self._index] = value

    @property
    def exhausted(self) -> bool:
        """Whether spend has reached the budget."""
        return bool(self._controller._exhausted[self._index])

    @exhausted.setter
    def exhausted(self, value: bool) -> None:
        self._controller._exhausted[self._index] = value

    @property
    def remaining(self) -> float:
        """Unspent budget."""
        return max(self.budget - self.spent, 0.0)


class PacingController:
    """Multiplicative pacing over a fixed delivery horizon.

    Parameters
    ----------
    horizon_hours:
        Total delivery window (the paper's runs are exactly 24 hours).
    gain:
        Feedback strength per control step; higher reacts faster but
        oscillates more.
    min_multiplier, max_multiplier:
        Clamp range for the bid multiplier.
    """

    def __init__(
        self,
        *,
        horizon_hours: float = 24.0,
        gain: float = 0.35,
        min_multiplier: float = 0.05,
        max_multiplier: float = 20.0,
        plan_weights: list[float] | None = None,
    ) -> None:
        if horizon_hours <= 0:
            raise BudgetError("horizon must be positive")
        if not 0 < min_multiplier <= max_multiplier:
            raise BudgetError("invalid multiplier clamp range")
        self._horizon = horizon_hours
        self._gain = gain
        self._clamp = (min_multiplier, max_multiplier)
        # Columnar ledger, indexed by registration order.
        self._index: dict[str, int] = {}
        self._ids: list[str] = []
        self._budget = np.empty(0, dtype=float)
        self._spent = np.empty(0, dtype=float)
        self._multiplier = np.empty(0, dtype=float)
        self._exhausted = np.empty(0, dtype=bool)
        # Real pacing systems plan spend against *predicted traffic*, not
        # wall-clock: an even plan over a diurnal day would starve the
        # overnight trough and panic-bid at dawn.  ``plan_weights`` gives
        # the relative opportunity volume per unit time (e.g. the hourly
        # diurnal curve); None keeps the uniform plan.
        if plan_weights is not None:
            weights = np.asarray(plan_weights, dtype=float)
            if weights.ndim != 1 or weights.size < 2 or np.any(weights < 0):
                raise BudgetError("plan_weights must be a non-negative 1-d curve")
            total = float(weights.sum())
            if total <= 0:
                raise BudgetError("plan_weights must have positive mass")
            self._cumulative_plan = np.concatenate([[0.0], np.cumsum(weights) / total])
        else:
            self._cumulative_plan = None

    # -- registration ------------------------------------------------------

    def register(self, ad_id: str, budget: float, *, initial_multiplier: float = 1.0) -> None:
        """Register an ad with its daily budget."""
        if budget <= 0:
            raise BudgetError(f"ad {ad_id}: budget must be positive")
        if ad_id in self._index:
            raise BudgetError(f"ad {ad_id} already registered")
        self._index[ad_id] = len(self._ids)
        self._ids.append(ad_id)
        self._budget = np.append(self._budget, float(budget))
        self._spent = np.append(self._spent, 0.0)
        self._multiplier = np.append(self._multiplier, float(initial_multiplier))
        self._exhausted = np.append(self._exhausted, False)

    @property
    def n_ads(self) -> int:
        """Number of registered ads."""
        return len(self._ids)

    def index_of(self, ad_id: str) -> int:
        """Registration-order column index of ``ad_id``."""
        try:
            return self._index[ad_id]
        except KeyError as exc:
            raise BudgetError(f"ad {ad_id} not registered with pacing") from exc

    def state(self, ad_id: str) -> PacingState:
        """Pacing state of one ad (a live view into the ledger)."""
        return PacingState(self, self.index_of(ad_id))

    # -- scalar spend API --------------------------------------------------

    def record_spend(self, ad_id: str, amount: float) -> None:
        """Charge ``amount`` to the ad; marks it exhausted at budget."""
        if amount < 0:
            raise BudgetError("spend must be non-negative")
        i = self.index_of(ad_id)
        self._spent[i] += amount
        if self._spent[i] >= self._budget[i]:
            self._exhausted[i] = True

    def can_bid(self, ad_id: str) -> bool:
        """Whether the ad still has budget to participate in auctions."""
        return not bool(self._exhausted[self.index_of(ad_id)])

    def alive_mask(self, ad_ids: list[str]) -> np.ndarray:
        """Boolean can-bid mask over ``ad_ids``, in their given order.

        The controller is the single owner of liveness: the delivery
        engine queries this mask (per hour, or per chunk in the batched
        engine) instead of keeping its own copy that could drift from the
        spend ledger.
        """
        indices = np.array([self.index_of(ad_id) for ad_id in ad_ids], dtype=np.intp)
        return ~self._exhausted[indices]

    def multiplier(self, ad_id: str) -> float:
        """Current bid multiplier of the ad."""
        return float(self._multiplier[self.index_of(ad_id)])

    # -- columnar API (registration order) ---------------------------------

    def multiplier_array(self) -> np.ndarray:
        """Bid multipliers of every ad, in registration order (copy)."""
        return self._multiplier.copy()

    def remaining_array(self) -> np.ndarray:
        """Unspent budget of every ad, in registration order."""
        return np.maximum(self._budget - self._spent, 0.0)

    def alive_array(self) -> np.ndarray:
        """Can-bid mask of every ad, in registration order (copy)."""
        return ~self._exhausted

    def record_spend_batch(self, ad_indices: np.ndarray, amounts: np.ndarray) -> None:
        """Charge a chunk of win prices, grouped by ad in one pass.

        ``ad_indices`` are registration-order column indices (duplicates
        expected — one entry per won slot) with parallel ``amounts``.
        Per-ad totals are summed over stable-sorted contiguous segments
        with ``ndarray.sum``, so each total is bit-identical to the
        pairwise sum a scalar call site (``amounts[ad_indices == i].sum()``)
        would have produced, and exhaustion flips exactly as with
        per-ad :meth:`record_spend` calls.
        """
        ad_indices = np.asarray(ad_indices, dtype=np.intp)
        amounts = np.asarray(amounts, dtype=float)
        if ad_indices.shape != amounts.shape or ad_indices.ndim != 1:
            raise BudgetError("ad_indices and amounts must be parallel 1-d arrays")
        if ad_indices.size == 0:
            return
        if float(amounts.min()) < 0:
            raise BudgetError("spend must be non-negative")
        if int(ad_indices.max()) >= len(self._ids) or int(ad_indices.min()) < 0:
            raise BudgetError("ad index outside the registered fleet")
        order = np.argsort(ad_indices, kind="stable")
        sorted_idx = ad_indices[order]
        sorted_amounts = amounts[order]
        unique_idx, starts = np.unique(sorted_idx, return_index=True)
        bounds = np.append(starts, sorted_idx.size)
        # Per-segment ndarray.sum keeps pairwise float semantics (see
        # docstring); the segments are contiguous so this stays O(n).
        totals = np.array(
            [sorted_amounts[s:e].sum() for s, e in zip(bounds[:-1], bounds[1:])]
        )
        self._spent[unique_idx] += totals
        newly_exhausted = self._spent[unique_idx] >= self._budget[unique_idx]
        self._exhausted[unique_idx] |= newly_exhausted

    # -- control loop ------------------------------------------------------

    def control_step(self, ad_id: str, elapsed_hours: float) -> float:
        """Run one pacing update; returns the new multiplier.

        Compares actual spend with the even-pacing plan at ``elapsed_hours``
        and adjusts the multiplier multiplicatively.
        """
        if not 0 <= elapsed_hours <= self._horizon:
            raise BudgetError(f"elapsed {elapsed_hours}h outside horizon {self._horizon}h")
        i = self.index_of(ad_id)
        if self._exhausted[i]:
            return float(self._multiplier[i])
        planned = float(self._budget[i]) * self._planned_fraction(elapsed_hours)
        if planned <= 0:
            return float(self._multiplier[i])
        # error > 0 when behind plan -> raise bid; < 0 when ahead -> lower.
        error = (planned - float(self._spent[i])) / max(
            planned, float(self._budget[i]) / self._horizon
        )
        factor = float(np.exp(self._gain * np.clip(error, -2.0, 2.0)))
        self._multiplier[i] = float(
            np.clip(self._multiplier[i] * factor, *self._clamp)
        )
        return float(self._multiplier[i])

    def _planned_fraction(self, elapsed_hours: float) -> float:
        """Share of the budget planned to be spent by ``elapsed_hours``."""
        if self._cumulative_plan is None:
            return elapsed_hours / self._horizon
        position = elapsed_hours / self._horizon * (self._cumulative_plan.size - 1)
        return float(np.interp(position, np.arange(self._cumulative_plan.size), self._cumulative_plan))

    def control_all(self, elapsed_hours: float) -> None:
        """Pacing update for every registered ad, in one array pass.

        Elementwise identical to calling :meth:`control_step` per ad:
        the planned fraction is shared, and ``np.exp``/``np.clip`` give
        the same floats on arrays as on scalars.
        """
        if not 0 <= elapsed_hours <= self._horizon:
            raise BudgetError(f"elapsed {elapsed_hours}h outside horizon {self._horizon}h")
        if not self._ids:
            return
        planned_fraction = self._planned_fraction(elapsed_hours)
        planned = self._budget * planned_fraction
        active = ~self._exhausted & (planned > 0)
        if not active.any():
            return
        error = (planned - self._spent) / np.maximum(planned, self._budget / self._horizon)
        factor = np.exp(self._gain * np.clip(error, -2.0, 2.0))
        updated = np.clip(self._multiplier * factor, *self._clamp)
        self._multiplier[active] = updated[active]

    def total_spend(self) -> float:
        """Aggregate spend across registered ads."""
        return float(sum(self._spent))
