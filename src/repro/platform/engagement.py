"""Ground-truth engagement: the society model.

This module encodes *population-level engagement regularities* — who tends
to click on what — that the platform's learned model later absorbs from
logged data.  Every regularity is taken from a finding the paper reports
or cites:

* congruent **race** affinity (images of Black people elicit more
  engagement from Black users, and vice versa) — the dominant effect in
  Tables 3/4.  It is split into a *direct* component
  (``race_congruence``) and an *economically mediated* component
  (``poverty_race_affinity``: residents of high-poverty ZIPs engage more
  with Black-implied imagery and less with white-implied imagery,
  regardless of their own race).  Appendix A's poverty-matched audiences
  neutralise the mediated component but not the direct one, reproducing
  the attenuated-but-significant Table-A1 coefficient;
* mild congruent **gender** affinity — visible once the dominant
  cross-effects are controlled (Table 4b/4c Female coefficients);
* **age congruence** — older-presenting faces engage older users
  (Figures 3B/3D);
* **images of children engage women**, bimodally in age (young parents
  and older women; Figure 4B and Table 4a/4b Child coefficients);
* **images of young women engage men 55+** — the TikTok/Musical.ly
  press observation the paper confirms (Figure 4A);
* **images of older men engage men** (Figure 3C right tail);
* **per-industry job affinities** matching workforce demographics
  (janitorial → Black women, lumber → white men, ... ; §6 and Ali et al.);
* a small generic smile bonus (professional-looking creatives do better)
  — notably *not* demographic.

The delivery algorithm never reads this module; it only sees clicks
sampled from it (see :mod:`repro.platform.ear`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.images.features import ImageBatch, ImageFeatures
from repro.platform.cells import GT_CELLS
from repro.types import AgeBucket, Gender, Race, bucket_midpoint

__all__ = ["EngagementParams", "EngagementModel", "JOB_AFFINITIES"]

#: Per-job (base, female, black) logit shifts; the female/black entries
#: flip sign for male/white users.  Signs follow the industry skews Ali et
#: al. measured and the paper reproduces in Figure 7 / Table 5.
JOB_AFFINITIES: dict[str, tuple[float, float, float]] = {
    "ai_engineer": (0.00, -0.30, -0.15),
    "doctor": (0.05, 0.05, 0.00),
    "janitor": (0.00, 0.15, 0.35),
    "lawyer": (0.00, 0.00, -0.10),
    "lumber": (-0.05, -0.45, -0.40),
    "nurse": (0.05, 0.45, 0.10),
    "preschool_teacher": (0.00, 0.50, 0.05),
    "restaurant_server": (0.00, 0.20, 0.10),
    "secretary": (0.00, 0.40, 0.00),
    "supermarket_clerk": (0.05, 0.25, 0.20),
    "taxi_driver": (0.00, -0.20, 0.30),
}

#: Job-affinity lookup arrays for the batch scoring path; index -1 (no
#: job) maps to the zero row appended at the end.
_JOB_INDEX: dict[str, int] = {job: i for i, job in enumerate(JOB_AFFINITIES)}
_JOB_BASE = np.array([aff[0] for aff in JOB_AFFINITIES.values()] + [0.0])
_JOB_FEMALE = np.array([aff[1] for aff in JOB_AFFINITIES.values()] + [0.0])
_JOB_BLACK = np.array([aff[2] for aff in JOB_AFFINITIES.values()] + [0.0])

_BUCKET_MIDPOINTS: dict[AgeBucket, float] = {b: bucket_midpoint(b) for b in AgeBucket}
#: Midpoints indexed by the bucket codes of :mod:`repro.population.columns`.
_BUCKET_MIDPOINT_TABLE = np.array([bucket_midpoint(b) for b in AgeBucket])

#: GT_CELLS unpacked into parallel per-field sequences for batch scoring.
_GT_BUCKETS = [cell[0] for cell in GT_CELLS]
_GT_GENDERS = [cell[1] for cell in GT_CELLS]
_GT_RACES = [cell[2] for cell in GT_CELLS]
_GT_POVERTY = np.array([cell[3] for cell in GT_CELLS])


def _job_index_array(job_categories, n: int) -> np.ndarray:
    """Map per-row job categories to indices into the affinity arrays.

    Accepts a single category (or ``None``) broadcast over ``n`` rows, or
    a sequence of per-row categories; ``-1`` marks portrait (no job) rows.
    """
    if job_categories is None or isinstance(job_categories, str):
        job_categories = [job_categories] * n
    elif len(job_categories) != n:
        raise ValidationError("job_categories misaligned with the batch")
    indices = np.empty(n, dtype=np.intp)
    for i, job in enumerate(job_categories):
        if job is None:
            indices[i] = -1
        else:
            try:
                indices[i] = _JOB_INDEX[job]
            except KeyError as exc:
                raise ValidationError(f"unknown job category {job!r}") from exc
    return indices


@dataclass(frozen=True, slots=True)
class EngagementParams:
    """Logit-scale weights of the society model.

    Defaults are calibrated so the full pipeline (engagement → logged
    clicks → learned EAR → auction → delivery) reproduces the *shape* of
    the paper's Tables 3–5.  Zeroing individual weights gives the
    ablations in ``benchmarks/``.
    """

    base_rate: float = 0.045
    user_age_slope: float = 0.2        # older users engage more overall
    race_congruence: float = 0.24
    poverty_race_affinity: float = 0.55
    gender_congruence: float = 0.02
    age_congruence: float = 0.35       # penalty per 50y of user/image age gap
    child_to_women: float = 0.34
    child_to_men: float = 0.08
    young_women_to_older_men: float = 0.55
    older_men_to_men: float = 0.12
    smile_bonus: float = 0.08
    job_affinity_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.base_rate < 1.0:
            raise ValidationError("base_rate must be in (0, 1)")


def _child_score(image_age: float) -> float:
    """1 for clearly-child faces, fading to 0 by age 14."""
    return float(np.clip((14.0 - image_age) / 7.0, 0.0, 1.0))


def _youngness(image_age: float) -> float:
    """Weight of the 'young adult' window (teens through ~30)."""
    rise = np.clip((image_age - 11.0) / 5.0, 0.0, 1.0)
    fall = np.clip((38.0 - image_age) / 16.0, 0.0, 1.0)
    return float(rise * fall)


def _caretaker_weight(user_age: float) -> float:
    """Bimodal age profile of engagement with images of children.

    Peaks around young parents (~28) and again for older users (~62,
    Figure 4B: older women see the most child imagery).
    """
    young = 1.3 * np.exp(-0.5 * ((user_age - 28.0) / 9.0) ** 2)
    older = 1.1 * np.exp(-0.5 * ((user_age - 62.0) / 12.0) ** 2)
    return float(young + older)


class EngagementModel:
    """Computes ground-truth click probabilities per user cell."""

    def __init__(self, params: EngagementParams | None = None) -> None:
        self._params = params or EngagementParams()

    @property
    def params(self) -> EngagementParams:
        """The society-model weights."""
        return self._params

    def click_logit(
        self,
        bucket: AgeBucket,
        gender: Gender,
        race: Race,
        image: ImageFeatures,
        job_category: str | None = None,
        *,
        high_poverty: bool = False,
    ) -> float:
        """Logit of the click probability for one user cell and image."""
        p = self._params
        user_age = bucket_midpoint(bucket)
        sign_female = 1.0 if gender is Gender.FEMALE else -1.0
        sign_black = 1.0 if race is Race.BLACK else -1.0

        logit = float(np.log(p.base_rate / (1.0 - p.base_rate)))
        logit += p.user_age_slope * (user_age - 18.0) / 52.0
        logit += p.race_congruence * (2.0 * image.race_score - 1.0) * sign_black
        if high_poverty:
            # Economically mediated affinity: high-poverty-ZIP residents of
            # either race engage more with Black-implied imagery (and less
            # with white-implied).  Non-poor users are neutral on this term.
            logit += p.poverty_race_affinity * (2.0 * image.race_score - 1.0)
        logit += p.gender_congruence * (2.0 * image.gender_score - 1.0) * sign_female
        effective_image_age = float(np.clip(image.age_years, 18.0, 80.0))
        logit -= p.age_congruence * abs(user_age - effective_image_age) / 50.0

        child = _child_score(image.age_years)
        if child > 0:
            caretaker = _caretaker_weight(user_age)
            weight = p.child_to_women if gender is Gender.FEMALE else p.child_to_men
            logit += weight * child * caretaker

        if gender is Gender.MALE:
            older_user = float(np.clip((user_age - 45.0) / 15.0, 0.0, 1.0))
            logit += (
                p.young_women_to_older_men
                * image.gender_score
                * _youngness(image.age_years)
                * older_user
            )
            logit += (
                p.older_men_to_men
                * (1.0 - image.gender_score)
                * float(np.clip((image.age_years - 30.0) / 40.0, 0.0, 1.0))
            )

        logit += p.smile_bonus * (image.smile - 0.5)

        if job_category is not None:
            try:
                base, female_aff, black_aff = JOB_AFFINITIES[job_category]
            except KeyError as exc:
                raise ValidationError(f"unknown job category {job_category!r}") from exc
            scale = p.job_affinity_scale
            logit += scale * (base + female_aff * sign_female + black_aff * sign_black)
        return logit

    def click_probability(
        self,
        bucket: AgeBucket,
        gender: Gender,
        race: Race,
        image: ImageFeatures,
        job_category: str | None = None,
        *,
        high_poverty: bool = False,
    ) -> float:
        """Click probability for one user cell."""
        logit = self.click_logit(
            bucket, gender, race, image, job_category, high_poverty=high_poverty
        )
        return float(1.0 / (1.0 + np.exp(-logit)))

    def click_logit_batch(
        self,
        buckets,
        genders,
        races,
        images: ImageBatch,
        job_categories=None,
        *,
        high_poverty=False,
    ) -> np.ndarray:
        """Vectorised :meth:`click_logit` over parallel event arrays.

        ``buckets`` / ``genders`` / ``races`` are per-event sequences of
        enum members — or integer *code* arrays in the conventions of
        :mod:`repro.population.columns`, the zero-conversion path the
        columnar universe feeds directly; ``images`` the matching
        :class:`ImageBatch`; ``job_categories`` and ``high_poverty`` may
        be scalars (broadcast) or per-event.  Row ``i`` equals the scalar
        ``click_logit`` of event ``i``.
        """
        p = self._params
        n = len(images)
        if isinstance(buckets, np.ndarray) and buckets.dtype.kind in "iu":
            user_age = _BUCKET_MIDPOINT_TABLE[buckets]
        else:
            user_age = np.array([_BUCKET_MIDPOINTS[b] for b in buckets])
        if user_age.shape != (n,):
            raise ValidationError("buckets misaligned with the batch")
        if isinstance(genders, np.ndarray) and genders.dtype.kind in "iu":
            female = genders == 1  # GENDER_ORDER code 1 = FEMALE
        else:
            female = np.array([g is Gender.FEMALE for g in genders])
        if isinstance(races, np.ndarray) and races.dtype.kind in "iu":
            black = races == 1  # RACE_ORDER code 1 = BLACK
        else:
            black = np.array([r is Race.BLACK for r in races])
        sign_female = np.where(female, 1.0, -1.0)
        sign_black = np.where(black, 1.0, -1.0)
        poverty = np.broadcast_to(np.asarray(high_poverty, dtype=bool), (n,))

        logit = np.full(n, np.log(p.base_rate / (1.0 - p.base_rate)))
        logit += p.user_age_slope * (user_age - 18.0) / 52.0
        race_lean = 2.0 * images.race_score - 1.0
        logit += p.race_congruence * race_lean * sign_black
        logit += np.where(poverty, p.poverty_race_affinity * race_lean, 0.0)
        logit += p.gender_congruence * (2.0 * images.gender_score - 1.0) * sign_female
        effective_image_age = np.clip(images.age_years, 18.0, 80.0)
        logit -= p.age_congruence * np.abs(user_age - effective_image_age) / 50.0

        child = np.clip((14.0 - images.age_years) / 7.0, 0.0, 1.0)
        caretaker = 1.3 * np.exp(-0.5 * ((user_age - 28.0) / 9.0) ** 2)
        caretaker += 1.1 * np.exp(-0.5 * ((user_age - 62.0) / 12.0) ** 2)
        child_weight = np.where(sign_female > 0, p.child_to_women, p.child_to_men)
        logit += child_weight * child * caretaker

        if isinstance(genders, np.ndarray) and genders.dtype.kind in "iu":
            male = genders == 0  # GENDER_ORDER code 0 = MALE
        else:
            male = np.array([g is Gender.MALE for g in genders])
        young = np.clip((images.age_years - 11.0) / 5.0, 0.0, 1.0)
        young *= np.clip((38.0 - images.age_years) / 16.0, 0.0, 1.0)
        older_user = np.clip((user_age - 45.0) / 15.0, 0.0, 1.0)
        logit += np.where(
            male,
            p.young_women_to_older_men * images.gender_score * young * older_user
            + p.older_men_to_men
            * (1.0 - images.gender_score)
            * np.clip((images.age_years - 30.0) / 40.0, 0.0, 1.0),
            0.0,
        )

        logit += p.smile_bonus * (images.smile - 0.5)

        job_idx = _job_index_array(job_categories, n)
        logit += p.job_affinity_scale * (
            _JOB_BASE[job_idx]
            + _JOB_FEMALE[job_idx] * sign_female
            + _JOB_BLACK[job_idx] * sign_black
        )
        return logit

    def click_probability_batch(
        self,
        buckets,
        genders,
        races,
        images: ImageBatch,
        job_categories=None,
        *,
        high_poverty=False,
    ) -> np.ndarray:
        """Vectorised :meth:`click_probability` over parallel event arrays."""
        logit = self.click_logit_batch(
            buckets, genders, races, images, job_categories, high_poverty=high_poverty
        )
        return 1.0 / (1.0 + np.exp(-logit))

    def probability_vector(
        self, image: ImageFeatures, job_category: str | None = None
    ) -> np.ndarray:
        """Click probabilities over all ground-truth cells (GT_CELLS order)."""
        return self.click_probability_batch(
            _GT_BUCKETS,
            _GT_GENDERS,
            _GT_RACES,
            ImageBatch.broadcast(image, len(GT_CELLS)),
            job_category,
            high_poverty=_GT_POVERTY,
        )
