"""Per-ad delivery reporting (the Insights API data model).

Facebook's reporting returns impressions, reach, clicks, spend, and
breakdowns by age bucket × gender and by region (§2.1 "Reporting", §3.3).
Importantly it never identifies individual users — the region breakdown is
the only channel through which the paper's race inference works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeliveryError
from repro.geo.regions import ALL_DMAS
from repro.platform.cells import AGE_GENDER_PAIRS
from repro.population.user import PlatformUser
from repro.types import AgeBucket, Gender, State

__all__ = ["AdInsights", "InsightsStore"]


@dataclass(slots=True)
class AdInsights:
    """Delivery counters for one ad."""

    ad_id: str
    impressions: int = 0
    clicks: int = 0
    spend: float = 0.0
    by_age_gender: dict[tuple[AgeBucket, Gender], int] = field(default_factory=dict)
    by_state: dict[State, int] = field(default_factory=dict)
    by_dma: dict[str, int] = field(default_factory=dict)
    by_hour: dict[int, int] = field(default_factory=dict)
    _reached: set[int] = field(default_factory=set, repr=False)

    @property
    def reach(self) -> int:
        """Unique users shown the ad."""
        return len(self._reached)

    def record(
        self,
        user: PlatformUser,
        state: State,
        dma: str,
        price: float,
        clicked: bool,
        *,
        hour: int = 0,
    ) -> None:
        """Record one impression."""
        if price < 0:
            raise DeliveryError("impression price cannot be negative")
        if not 0 <= hour < 24:
            raise DeliveryError(f"hour {hour} outside a delivery day")
        self.impressions += 1
        self.spend += price
        if clicked:
            self.clicks += 1
        key = (user.age_bucket, user.gender)
        self.by_age_gender[key] = self.by_age_gender.get(key, 0) + 1
        self.by_state[state] = self.by_state.get(state, 0) + 1
        self.by_dma[dma] = self.by_dma.get(dma, 0) + 1
        self.by_hour[hour] = self.by_hour.get(hour, 0) + 1
        self._reached.add(user.user_id)

    def record_batch(
        self,
        user_ids: np.ndarray,
        age_gender_codes: np.ndarray,
        dma_codes: np.ndarray,
        prices: np.ndarray,
        clicked: np.ndarray,
        *,
        hour: int = 0,
    ) -> None:
        """Record a batch of impressions in one pass.

        The bulk counterpart of :meth:`record`, fed by the vectorized
        delivery engine: per-impression attributes arrive as parallel
        integer/float arrays — ``age_gender_codes`` index
        :data:`repro.platform.cells.AGE_GENDER_PAIRS` and ``dma_codes``
        index :data:`repro.geo.regions.ALL_DMAS` (which pins down the
        state) — and every counter is updated from array aggregates, one
        dict touch per *distinct* key rather than per impression.
        """
        n = int(user_ids.shape[0])
        if n == 0:
            return
        if float(prices.min()) < 0:
            raise DeliveryError("impression price cannot be negative")
        if not 0 <= hour < 24:
            raise DeliveryError(f"hour {hour} outside a delivery day")
        self.impressions += n
        self.spend += float(prices.sum())
        self.clicks += int(np.count_nonzero(clicked))
        for code, count in zip(*np.unique(age_gender_codes, return_counts=True)):
            key = AGE_GENDER_PAIRS[code]
            self.by_age_gender[key] = self.by_age_gender.get(key, 0) + int(count)
        for code, count in zip(*np.unique(dma_codes, return_counts=True)):
            state, dma = ALL_DMAS[code]
            self.by_state[state] = self.by_state.get(state, 0) + int(count)
            self.by_dma[dma] = self.by_dma.get(dma, 0) + int(count)
        self.by_hour[hour] = self.by_hour.get(hour, 0) + n
        self._reached.update(int(uid) for uid in np.unique(user_ids))

    def impressions_in(self, state: State) -> int:
        """Impressions attributed to one state."""
        return self.by_state.get(state, 0)

    @property
    def frequency(self) -> float:
        """Average impressions per reached user."""
        if self.reach == 0:
            raise DeliveryError(f"ad {self.ad_id} reached nobody")
        return self.impressions / self.reach

    def hourly_spread(self) -> float:
        """Fraction of the day's hours with at least one impression.

        A well-paced daily budget delivers throughout the day rather than
        exhausting in the first hour; the pacing tests assert this stays
        high.
        """
        if self.impressions == 0:
            raise DeliveryError(f"ad {self.ad_id} has no impressions")
        return len(self.by_hour) / 24.0

    def fraction_female(self) -> float:
        """Fraction of impressions delivered to female users."""
        if self.impressions == 0:
            raise DeliveryError(f"ad {self.ad_id} has no impressions")
        female = sum(
            count for (bucket, gender), count in self.by_age_gender.items()
            if gender is Gender.FEMALE
        )
        return female / self.impressions

    def fraction_age_at_least(self, min_age: int) -> float:
        """Fraction of impressions delivered to users ``min_age`` or older.

        ``min_age`` must align with a bucket boundary (Facebook only
        reports bucketed ages).
        """
        if self.impressions == 0:
            raise DeliveryError(f"ad {self.ad_id} has no impressions")
        if not any(bucket.lower == min_age for bucket in AgeBucket):
            raise DeliveryError(f"min_age {min_age} is not a bucket boundary")
        older = sum(
            count for (bucket, gender), count in self.by_age_gender.items()
            if bucket.lower >= min_age
        )
        return older / self.impressions

    def average_audience_age(self) -> float:
        """Bucket-midpoint-weighted mean age of the reached audience.

        The statistic behind Figures 3B/3D and 5B/5D: only bucketed counts
        are observable, so midpoints stand in for exact ages.
        """
        from repro.types import bucket_midpoint

        if self.impressions == 0:
            raise DeliveryError(f"ad {self.ad_id} has no impressions")
        total = sum(
            bucket_midpoint(bucket) * count
            for (bucket, gender), count in self.by_age_gender.items()
        )
        return total / self.impressions

    def fraction_cell(self, *, gender: Gender, min_age: int) -> float:
        """Fraction of impressions to one gender at/above ``min_age``.

        Behind Figure 4's "fraction of men aged 55+ in the audience".
        """
        if self.impressions == 0:
            raise DeliveryError(f"ad {self.ad_id} has no impressions")
        count = sum(
            c for (bucket, g), c in self.by_age_gender.items()
            if g is gender and bucket.lower >= min_age
        )
        return count / self.impressions


@dataclass(slots=True)
class InsightsStore:
    """All per-ad insights of one delivery run."""

    by_ad: dict[str, AdInsights] = field(default_factory=dict)

    def for_ad(self, ad_id: str) -> AdInsights:
        """Insights of one ad (created on first access)."""
        if ad_id not in self.by_ad:
            self.by_ad[ad_id] = AdInsights(ad_id=ad_id)
        return self.by_ad[ad_id]

    def record_batch(
        self,
        ad_id: str,
        user_ids: np.ndarray,
        age_gender_codes: np.ndarray,
        dma_codes: np.ndarray,
        prices: np.ndarray,
        clicked: np.ndarray,
        *,
        hour: int = 0,
    ) -> None:
        """Bulk-record one ad's impressions (see :meth:`AdInsights.record_batch`)."""
        self.for_ad(ad_id).record_batch(
            user_ids, age_gender_codes, dma_codes, prices, clicked, hour=hour
        )

    def record_hour(
        self,
        ad_ids: list[str],
        win_ad_indices: np.ndarray,
        user_ids: np.ndarray,
        age_gender_codes: np.ndarray,
        dma_codes: np.ndarray,
        prices: np.ndarray,
        clicked: np.ndarray,
        *,
        hour: int = 0,
    ) -> None:
        """Record a whole hour's wins across many ads in one pass.

        The many-campaign counterpart of per-ad :meth:`record_batch`
        dispatch: ``win_ad_indices`` index ``ad_ids`` (one entry per won
        slot, parallel to the other arrays).  Impressions are stable-
        sorted by ad once, the age-gender and DMA histograms come from
        *global* ``(ad, code)`` pair tables (two ``np.unique`` calls per
        hour instead of two per ad per hour), and each ad's spend is
        summed over its contiguous slot-ordered segment — bit-identical,
        counter for counter, to looping ``record_batch`` over
        ``np.unique(win_ad_indices)`` with boolean masks.
        """
        n = int(win_ad_indices.shape[0])
        if n == 0:
            return
        if float(prices.min()) < 0:
            raise DeliveryError("impression price cannot be negative")
        if not 0 <= hour < 24:
            raise DeliveryError(f"hour {hour} outside a delivery day")
        order = np.argsort(win_ad_indices, kind="stable")
        a = win_ad_indices[order]
        uids = user_ids[order]
        prices = prices[order]
        clicked = clicked[order]
        unique_ads, starts = np.unique(a, return_index=True)
        bounds = np.append(starts, n)
        # Global (ad, code) histograms; both code spaces are small and
        # fixed, so one flat key per impression suffices.
        n_ag = len(AGE_GENDER_PAIRS)
        ag_keys, ag_counts = np.unique(
            a * n_ag + age_gender_codes[order], return_counts=True
        )
        n_dma = len(ALL_DMAS)
        dma_keys, dma_counts = np.unique(
            a * n_dma + dma_codes[order], return_counts=True
        )
        ag_bounds = np.searchsorted(ag_keys // n_ag, unique_ads, side="left")
        ag_bounds = np.append(ag_bounds, ag_keys.size)
        dma_bounds = np.searchsorted(dma_keys // n_dma, unique_ads, side="left")
        dma_bounds = np.append(dma_bounds, dma_keys.size)
        for k, ad_index in enumerate(unique_ads):
            s, e = int(bounds[k]), int(bounds[k + 1])
            insights = self.for_ad(ad_ids[int(ad_index)])
            insights.impressions += e - s
            insights.spend += float(prices[s:e].sum())
            insights.clicks += int(np.count_nonzero(clicked[s:e]))
            for key, count in zip(
                ag_keys[ag_bounds[k] : ag_bounds[k + 1]] % n_ag,
                ag_counts[ag_bounds[k] : ag_bounds[k + 1]],
            ):
                pair = AGE_GENDER_PAIRS[key]
                insights.by_age_gender[pair] = (
                    insights.by_age_gender.get(pair, 0) + int(count)
                )
            for key, count in zip(
                dma_keys[dma_bounds[k] : dma_bounds[k + 1]] % n_dma,
                dma_counts[dma_bounds[k] : dma_bounds[k + 1]],
            ):
                state, dma = ALL_DMAS[key]
                insights.by_state[state] = insights.by_state.get(state, 0) + int(count)
                insights.by_dma[dma] = insights.by_dma.get(dma, 0) + int(count)
            insights.by_hour[hour] = insights.by_hour.get(hour, 0) + (e - s)
            insights._reached.update(np.unique(uids[s:e]).tolist())

    def total_impressions(self) -> int:
        """Impressions across all ads."""
        return sum(i.impressions for i in self.by_ad.values())

    def total_spend(self) -> float:
        """Spend across all ads."""
        return sum(i.spend for i in self.by_ad.values())

    def total_reach(self) -> int:
        """Unique users reached across all ads (union)."""
        reached: set[int] = set()
        for insights in self.by_ad.values():
            reached |= insights._reached
        return len(reached)
