"""Custom Audience storage and PII upload handling.

Advertisers upload SHA-256-hashed PII; the store matches hashes against
the user universe (via :class:`repro.population.PiiMatcher`) and records
only matched user ids — the platform never stores the raw upload,
mirroring how Customer List audiences work.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import AudienceError
from repro.population.universe import UserUniverse

__all__ = ["CustomAudience", "AudienceStore"]


@dataclass(frozen=True, slots=True)
class CustomAudience:
    """One matched Custom Audience."""

    audience_id: str
    name: str
    uploaded_count: int
    member_ids: frozenset[int]

    @property
    def matched_count(self) -> int:
        """Number of uploaded identifiers that matched a user."""
        return len(self.member_ids)

    @property
    def match_rate(self) -> float:
        """Matched fraction of the upload."""
        if self.uploaded_count == 0:
            return 0.0
        return self.matched_count / self.uploaded_count


@dataclass(slots=True)
class AudienceStore:
    """All Custom Audiences of one platform instance."""

    universe: UserUniverse
    audiences: dict[str, CustomAudience] = field(default_factory=dict)
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)

    def create_from_hashes(self, name: str, pii_hashes: Iterable[str]) -> CustomAudience:
        """Match an upload of PII hashes and store the resulting audience.

        Raises
        ------
        AudienceError
            If the upload is empty or nothing matches (the real platform
            refuses to deliver to audiences below a minimum size).
        """
        hashes = list(pii_hashes)
        if not hashes:
            raise AudienceError("empty PII upload")
        # match_indices keeps everything columnar: member ids come from
        # one searchsorted pass, never materialising user objects.
        matched_ids = self.universe.matcher.match_indices(hashes)
        if matched_ids.size == 0:
            raise AudienceError(f"audience {name!r}: no uploaded identifier matched")
        audience = CustomAudience(
            audience_id=f"aud_{next(self._counter)}",
            name=name,
            uploaded_count=len(set(hashes)),
            member_ids=frozenset(map(int, matched_ids.tolist())),
        )
        self.audiences[audience.audience_id] = audience
        return audience

    def create_from_members(self, name: str, member_ids: frozenset[int]) -> CustomAudience:
        """Register a platform-generated audience (e.g. a Lookalike).

        Unlike :meth:`create_from_hashes` there is no upload: the platform
        itself selected the members, so ``uploaded_count`` equals the
        member count and the match rate is trivially 1.
        """
        if not member_ids:
            raise AudienceError(f"audience {name!r} would be empty")
        audience = CustomAudience(
            audience_id=f"aud_{next(self._counter)}",
            name=name,
            uploaded_count=len(member_ids),
            member_ids=frozenset(member_ids),
        )
        self.audiences[audience.audience_id] = audience
        return audience

    def get(self, audience_id: str) -> CustomAudience:
        """Look up an audience by id."""
        try:
            return self.audiences[audience_id]
        except KeyError as exc:
            raise AudienceError(f"unknown audience {audience_id!r}") from exc

    def members_map(self) -> dict[str, set[int]]:
        """audience id → member user ids, for targeting resolution."""
        return {aid: set(aud.member_ids) for aid, aud in self.audiences.items()}
