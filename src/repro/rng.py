"""Deterministic random-stream management.

Every stochastic component in the library draws from a named
:class:`numpy.random.Generator` stream derived from a single experiment
seed.  Deriving independent streams per component (rather than sharing one
generator) means that, e.g., adding one more ad to a campaign does not
perturb the voter-registry synthesis — a property several regression tests
rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SeedSequenceFactory", "derive_rng"]


class SeedSequenceFactory:
    """Factory producing named, independent random generators.

    Streams are derived with :class:`numpy.random.SeedSequence` spawn keys
    built by hashing the stream name, so the same ``(seed, name)`` pair
    always yields an identical stream regardless of creation order.

    Example::

        rngs = SeedSequenceFactory(seed=7)
        voters_rng = rngs.get("voters.fl")
        delivery_rng = rngs.get("delivery.campaign1")
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root experiment seed."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name``.

        Calling twice with the same name returns two generators positioned
        at the same (initial) state; callers keep the generator they need.
        """
        return derive_rng(self._seed, name)

    def child(self, name: str) -> "SeedSequenceFactory":
        """Return a factory whose streams are namespaced under ``name``."""
        token = _name_token(name)
        return SeedSequenceFactory(seed=(self._seed * 1_000_003 + token) % (2**63))


def _name_token(name: str) -> int:
    """Stable 64-bit hash of a stream name (Python's ``hash`` is salted)."""
    token = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        token ^= byte
        token = (token * 1099511628211) % (2**64)
    return token


def derive_rng(seed: int, name: str) -> np.random.Generator:
    """Derive an independent generator for ``(seed, name)``."""
    return np.random.default_rng(np.random.SeedSequence([int(seed) % (2**63), _name_token(name)]))
