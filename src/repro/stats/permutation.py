"""Permutation tests.

A design-based robustness check for the paper's OLS inference: under the
null that the implied identity in the image does not affect delivery, the
treatment labels are exchangeable across images (they were assigned by
the experimenter), so the null distribution of any statistic can be built
by permuting labels.  This requires none of OLS's homoskedasticity or
normality assumptions and is the natural referee-requested check for a
49-to-200-observation regression.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import StatsError

__all__ = ["permutation_test_mean_difference", "permutation_test_statistic"]


def permutation_test_mean_difference(
    outcomes: np.ndarray,
    treated: np.ndarray,
    rng: np.random.Generator,
    *,
    n_permutations: int = 2000,
) -> tuple[float, float]:
    """Two-sided permutation test for a difference in group means.

    Parameters
    ----------
    outcomes:
        Per-unit outcome (e.g. each image's fraction-Black delivery).
    treated:
        Boolean treatment indicator (e.g. image implies a Black person).

    Returns ``(observed_difference, p_value)``.
    """
    outcomes = np.asarray(outcomes, dtype=float).ravel()
    treated = np.asarray(treated, dtype=bool).ravel()
    if outcomes.shape != treated.shape:
        raise StatsError("outcomes and treatment must align")
    if treated.all() or not treated.any():
        raise StatsError("need both treated and control units")

    def difference(labels: np.ndarray) -> float:
        return float(outcomes[labels].mean() - outcomes[~labels].mean())

    observed = difference(treated)
    return observed, permutation_test_statistic(
        lambda labels: difference(labels), treated, rng, n_permutations=n_permutations
    )


def permutation_test_statistic(
    statistic: Callable[[np.ndarray], float],
    treated: np.ndarray,
    rng: np.random.Generator,
    *,
    n_permutations: int = 2000,
) -> float:
    """Two-sided permutation p-value for an arbitrary label statistic.

    ``statistic`` maps a boolean label vector to a scalar; the p-value is
    the share of label permutations whose |statistic| is at least the
    observed |statistic| (with the +1 continuity correction, so the
    p-value is never exactly 0).
    """
    treated = np.asarray(treated, dtype=bool).ravel()
    if n_permutations < 100:
        raise StatsError("need at least 100 permutations")
    observed = abs(statistic(treated))
    hits = 0
    labels = treated.copy()
    for _ in range(n_permutations):
        rng.shuffle(labels)
        if abs(statistic(labels)) >= observed:
            hits += 1
    return (hits + 1) / (n_permutations + 1)
