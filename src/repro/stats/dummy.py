"""Dummy coding of categorical treatment variables.

The paper (§3.4, footnote 6) encodes each N-level categorical feature as
N-1 binary columns, with the omitted ("reference") level absorbed by the
intercept: the stock-image regressions use white / male / adult as the
reference, so the intercept is the predicted outcome for a white adult
male image.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StatsError

__all__ = ["DummyCoding"]


@dataclass(frozen=True, slots=True)
class Factor:
    """One categorical factor: its levels, first level is the reference."""

    name: str
    levels: tuple[str, ...]


class DummyCoding:
    """Builds a dummy-coded design matrix from categorical rows.

    Example::

        coding = DummyCoding()
        coding.add_factor("race", ["white", "Black"])
        coding.add_factor("age", ["adult", "child", "teen", "middle-aged", "elderly"])
        X, names = coding.encode([{"race": "Black", "age": "teen"}, ...])

    Column names are the non-reference level names (capitalised like the
    paper's tables when ``label_overrides`` maps them).
    """

    def __init__(self) -> None:
        self._factors: list[Factor] = []
        self._labels: dict[str, str] = {}

    def add_factor(
        self,
        name: str,
        levels: list[str],
        *,
        labels: dict[str, str] | None = None,
    ) -> None:
        """Register a factor; ``levels[0]`` becomes the reference level."""
        if len(levels) < 2:
            raise StatsError(f"factor {name!r} needs at least 2 levels")
        if len(set(levels)) != len(levels):
            raise StatsError(f"factor {name!r} has duplicate levels")
        self._factors.append(Factor(name=name, levels=tuple(levels)))
        for level, label in (labels or {}).items():
            self._labels[f"{name}={level}"] = label

    @property
    def column_names(self) -> list[str]:
        """Names of the encoded columns, in order."""
        names: list[str] = []
        for factor in self._factors:
            for level in factor.levels[1:]:
                names.append(self._labels.get(f"{factor.name}={level}", level))
        return names

    def encode(self, rows: list[dict[str, str]]) -> tuple[np.ndarray, list[str]]:
        """Encode rows into a (n, p) 0/1 matrix plus column names."""
        if not self._factors:
            raise StatsError("no factors registered")
        if not rows:
            raise StatsError("no rows to encode")
        columns: list[np.ndarray] = []
        for factor in self._factors:
            valid = set(factor.levels)
            values = []
            for i, row in enumerate(rows):
                if factor.name not in row:
                    raise StatsError(f"row {i} missing factor {factor.name!r}")
                if row[factor.name] not in valid:
                    raise StatsError(
                        f"row {i}: {row[factor.name]!r} is not a level of {factor.name!r}"
                    )
                values.append(row[factor.name])
            for level in factor.levels[1:]:
                columns.append(np.array([1.0 if v == level else 0.0 for v in values]))
        return np.column_stack(columns), self.column_names
