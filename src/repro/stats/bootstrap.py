"""Nonparametric bootstrap confidence intervals.

Delivery fractions (e.g. "% of the actual audience that is Black") are
ratios of noisy impression counts; the examples and some benches report
percentile-bootstrap CIs alongside the point estimates.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import StatsError

__all__ = ["bootstrap_ci"]


def bootstrap_ci(
    data: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    rng: np.random.Generator,
    *,
    n_resamples: int = 1000,
    confidence: float = 0.95,
) -> tuple[float, float, float]:
    """Percentile bootstrap CI for ``statistic(data)``.

    Returns ``(point_estimate, low, high)``.
    """
    data = np.asarray(data)
    if data.size == 0:
        raise StatsError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise StatsError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise StatsError("need at least 10 resamples")
    point = float(statistic(data))
    estimates = np.empty(n_resamples)
    n = data.shape[0]
    for i in range(n_resamples):
        sample = data[rng.integers(0, n, size=n)]
        estimates[i] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return point, float(low), float(high)
