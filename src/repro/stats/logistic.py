"""L2-regularised logistic regression via L-BFGS.

Two consumers with very different shapes:

* the StyleGAN latent-direction finder (§5.4) fits on up to 50,000 samples
  of a 9,216-dimensional activation space — high-dimensional, so the
  implementation is matrix-free (only matrix-vector products) and accepts
  float32 inputs;
* the platform's estimated-action-rate model fits on engagement logs with
  a few hundred cross features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.errors import StatsError

__all__ = ["LogisticModel", "fit_logistic", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


@dataclass(frozen=True, slots=True)
class LogisticModel:
    """Fitted logistic regression: ``P(y=1|x) = sigmoid(x·w + b)``."""

    weights: np.ndarray
    intercept: float
    converged: bool
    n_iter: int

    def decision(self, X: np.ndarray) -> np.ndarray:
        """Linear decision values ``X·w + b``."""
        return np.asarray(X, dtype=float) @ self.weights + self.intercept

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(y=1) per row."""
        return sigmoid(self.decision(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 labels."""
        return (self.predict_proba(X) >= threshold).astype(int)

    def direction(self) -> np.ndarray:
        """Unit-norm weight vector.

        §5.4: "The fitted coefficients of the regression model are
        precisely the vector in the activation space that represents the
        direction of change."
        """
        norm = float(np.linalg.norm(self.weights))
        if norm == 0:
            raise StatsError("zero weight vector has no direction")
        return self.weights / norm


def fit_logistic(
    X: np.ndarray,
    y: np.ndarray,
    *,
    l2: float = 1.0,
    max_iter: int = 200,
    tol: float = 1e-6,
) -> LogisticModel:
    """Fit a logistic regression by minimising the penalised deviance.

    Parameters
    ----------
    X:
        (n, p) feature matrix; float32 accepted (kept as-is for the
        matvecs, so 50k × 9216 fits in memory).
    y:
        Binary labels (0/1).
    l2:
        Ridge penalty on the weights (not the intercept).
    """
    X = np.asarray(X)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2:
        raise StatsError(f"X must be 2-d, got {X.shape}")
    n, p = X.shape
    if y.shape[0] != n:
        raise StatsError(f"y has {y.shape[0]} rows, X has {n}")
    classes = np.unique(y)
    if not np.all(np.isin(classes, (0.0, 1.0))):
        raise StatsError(f"labels must be 0/1, got {classes[:5]}")
    if classes.size < 2:
        raise StatsError("need both classes present to fit")
    if l2 < 0:
        raise StatsError("l2 penalty must be non-negative")

    # Keep the big matrix products in X's own dtype: promoting a float32
    # activation matrix to float64 would copy hundreds of MB per gradient
    # evaluation for the 50k x 9216 direction fits.
    dtype = X.dtype if X.dtype in (np.float32, np.float64) else np.float64
    sign = (2.0 * y - 1.0).astype(dtype)
    y_typed = y.astype(dtype)

    def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
        w = theta[:p].astype(dtype, copy=False)
        z = X @ w + np.asarray(theta[p], dtype=dtype)
        # log(1 + exp(-s*z)) with s = ±1, computed stably
        loss = float(np.sum(np.logaddexp(0.0, -(sign * z)))) + 0.5 * l2 * float(w @ w)
        grad_z = (sigmoid(z) - y_typed).astype(dtype, copy=False)
        grad_w = X.T @ grad_z + l2 * w
        grad_b = float(np.sum(grad_z))
        return loss, np.concatenate([np.asarray(grad_w, dtype=float), [grad_b]])

    theta0 = np.zeros(p + 1)
    result = optimize.minimize(
        objective,
        theta0,
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iter, "ftol": tol},
    )
    return LogisticModel(
        weights=np.asarray(result.x[:p], dtype=float),
        intercept=float(result.x[p]),
        converged=bool(result.success),
        n_iter=int(result.nit),
    )
