"""Random-intercept linear mixed model (Table 5).

The paper's real-world job-ad analysis "groups the ads by job type to fit
separate intercepts (hence the use of a mixed-effects model)".  The model is

.. math::  y = X\\beta + Z b + \\varepsilon,\\qquad
           b_g \\sim N(0, \\sigma_b^2),\\ \\varepsilon \\sim N(0, \\sigma^2)

with one random intercept per group.  We fit by *profiled maximum
likelihood*: for a fixed variance ratio ``lam = σ_b²/σ²`` the GLS solution
and σ² are closed-form (the per-group covariance ``I + lam·11ᵀ`` inverts
analytically), so the likelihood reduces to a 1-d optimisation over
``lam``.

Fixed-effect inference uses the asymptotic normal approximation.  The
reported ``adj_r_squared`` is the adjusted R² of the fixed effects on the
*within-group-demeaned* data — this matches the paper's Table-5 numbers in
spirit (it can go negative when the treatment explains nothing, exactly as
models IV–VI do there).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize
from scipy import stats as sps

from repro.errors import StatsError
from repro.stats.tables import significance_stars

__all__ = ["MixedLMResult", "fit_random_intercept"]


@dataclass(frozen=True, slots=True)
class MixedLMResult:
    """Fitted random-intercept model."""

    terms: tuple[str, ...]
    coef: np.ndarray
    stderr: np.ndarray
    z_values: np.ndarray
    p_values: np.ndarray
    sigma2: float
    sigma2_group: float
    adj_r_squared: float
    n_obs: int
    n_groups: int
    log_likelihood: float

    def coefficient(self, term: str) -> float:
        """Fixed-effect coefficient of ``term``."""
        return float(self.coef[self._index(term)])

    def p_value(self, term: str) -> float:
        """Two-sided p-value of ``term``."""
        return float(self.p_values[self._index(term)])

    def stars(self, term: str) -> str:
        """Paper-style significance marker."""
        return significance_stars(self.p_value(term))

    def is_significant(self, term: str, alpha: float = 0.05) -> bool:
        """Whether ``term`` is significant at ``alpha``."""
        return self.p_value(term) < alpha

    def _index(self, term: str) -> int:
        try:
            return self.terms.index(term)
        except ValueError as exc:
            raise StatsError(f"unknown term {term!r}; have {self.terms}") from exc


def fit_random_intercept(
    y: np.ndarray,
    X: np.ndarray,
    groups: np.ndarray,
    term_names: list[str],
    *,
    add_intercept: bool = True,
) -> MixedLMResult:
    """Fit ``y ~ X + (1 | groups)`` by profiled maximum likelihood.

    Parameters
    ----------
    y:
        Outcome, shape (n,).
    X:
        Fixed-effect regressors, shape (n, p), without intercept.
    groups:
        Group label per observation (any hashable dtype).
    term_names:
        Names for the p columns of X.
    """
    y = np.asarray(y, dtype=float).ravel()
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X[:, None]
    n, p = X.shape
    if y.shape[0] != n or len(groups) != n:
        raise StatsError("y, X and groups must have matching lengths")
    if len(term_names) != p:
        raise StatsError(f"{len(term_names)} names for {p} columns")
    if add_intercept:
        X = np.column_stack([np.ones(n), X])
        names = ("Intercept", *term_names)
    else:
        names = tuple(term_names)
    k = X.shape[1]
    if n <= k:
        raise StatsError(f"not enough observations: n={n}, k={k}")

    labels, group_idx = np.unique(np.asarray(groups), return_inverse=True)
    n_groups = labels.size
    group_slices = [np.flatnonzero(group_idx == g) for g in range(n_groups)]
    group_sizes = np.array([s.size for s in group_slices], dtype=float)

    def gls(lam: float) -> tuple[np.ndarray, float, float, np.ndarray]:
        """GLS fit for a fixed variance ratio; returns (beta, sigma2, ll, xtvx_inv)."""
        # V_g^{-1} = I - (lam / (1 + lam*n_g)) 11^T   per group
        xtvx = np.zeros((k, k))
        xtvy = np.zeros(k)
        for s, n_g in zip(group_slices, group_sizes):
            Xg, yg = X[s], y[s]
            shrink = lam / (1.0 + lam * n_g)
            xg_sum = Xg.sum(axis=0)
            yg_sum = yg.sum()
            xtvx += Xg.T @ Xg - shrink * np.outer(xg_sum, xg_sum)
            xtvy += Xg.T @ yg - shrink * xg_sum * yg_sum
        try:
            xtvx_inv = np.linalg.inv(xtvx)
        except np.linalg.LinAlgError as exc:
            raise StatsError("singular GLS design (collinear fixed effects?)") from exc
        beta = xtvx_inv @ xtvy
        quad = 0.0
        for s, n_g in zip(group_slices, group_sizes):
            resid = y[s] - X[s] @ beta
            shrink = lam / (1.0 + lam * n_g)
            quad += resid @ resid - shrink * resid.sum() ** 2
        sigma2 = max(quad / n, 1e-12)
        logdet = float(np.sum(np.log1p(lam * group_sizes)))
        ll = -0.5 * (n * np.log(2.0 * np.pi * sigma2) + logdet + n)
        return beta, sigma2, float(ll), xtvx_inv

    def neg_ll_of_log_lam(log_lam: float) -> float:
        _, _, ll, _ = gls(float(np.exp(log_lam)))
        return -ll

    opt = optimize.minimize_scalar(
        neg_ll_of_log_lam, bounds=(-12.0, 8.0), method="bounded"
    )
    lam = float(np.exp(opt.x))
    # Compare against the boundary lam -> 0 (no group variance).
    beta0, sigma2_0, ll0, inv0 = gls(0.0)
    beta, sigma2, ll, xtvx_inv = gls(lam)
    if ll0 >= ll:
        lam, beta, sigma2, ll, xtvx_inv = 0.0, beta0, sigma2_0, ll0, inv0

    cov = sigma2 * xtvx_inv
    stderr = np.sqrt(np.clip(np.diag(cov), 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        z_values = np.where(stderr > 0, beta / stderr, np.inf * np.sign(beta))
    p_values = 2.0 * sps.norm.sf(np.abs(z_values))

    adj_r2 = _within_group_adj_r2(y, X[:, 1:] if add_intercept else X, group_slices)

    return MixedLMResult(
        terms=names,
        coef=beta,
        stderr=stderr,
        z_values=np.asarray(z_values, dtype=float),
        p_values=np.asarray(p_values, dtype=float),
        sigma2=float(sigma2),
        sigma2_group=float(lam * sigma2),
        adj_r_squared=float(adj_r2),
        n_obs=n,
        n_groups=int(n_groups),
        log_likelihood=float(ll),
    )


def _within_group_adj_r2(
    y: np.ndarray, X: np.ndarray, group_slices: list[np.ndarray]
) -> float:
    """Adjusted R² of the fixed effects on group-demeaned data."""
    y_d = y.copy()
    X_d = X.copy()
    for s in group_slices:
        y_d[s] -= y_d[s].mean()
        if X_d.size:
            X_d[s] -= X_d[s].mean(axis=0)
    n = y_d.shape[0]
    p = X_d.shape[1] if X_d.ndim == 2 else 0
    tss = float(y_d @ y_d)
    if tss <= 0 or p == 0:
        return 0.0
    beta, *_ = np.linalg.lstsq(X_d, y_d, rcond=None)
    resid = y_d - X_d @ beta
    rss = float(resid @ resid)
    r2 = 1.0 - rss / tss
    df = n - p - 1
    if df <= 0:
        return r2
    return 1.0 - (1.0 - r2) * (n - 1) / df
