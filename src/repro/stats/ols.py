"""Ordinary least squares with classical inference.

Implements exactly what the paper's §3.4 describes: coefficient estimates,
two-sided t-test p-values with significance stars, and the R² "fraction of
variance explained".  The intercept is always prepended; explanatory
variables enter as the caller provides them (typically dummy-coded).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import StatsError
from repro.stats.tables import significance_stars

__all__ = ["OLSResult", "fit_ols"]


@dataclass(frozen=True, slots=True)
class OLSResult:
    """Fitted OLS model.

    Attributes mirror a regression table: per-term ``coef``, ``stderr``,
    ``t_values``, ``p_values``; model-level ``r_squared`` and
    ``adj_r_squared``.  ``terms`` names each coefficient, starting with
    ``"Intercept"``.
    """

    terms: tuple[str, ...]
    coef: np.ndarray
    stderr: np.ndarray
    t_values: np.ndarray
    p_values: np.ndarray
    r_squared: float
    adj_r_squared: float
    n_obs: int
    df_resid: int

    def coefficient(self, term: str) -> float:
        """Coefficient of ``term``."""
        return float(self.coef[self._index(term)])

    def p_value(self, term: str) -> float:
        """Two-sided p-value of ``term``."""
        return float(self.p_values[self._index(term)])

    def stars(self, term: str) -> str:
        """Significance stars for ``term`` in the paper's convention."""
        return significance_stars(self.p_value(term))

    def is_significant(self, term: str, alpha: float = 0.05) -> bool:
        """Whether ``term``'s coefficient differs from 0 at level ``alpha``."""
        return self.p_value(term) < alpha

    def predict(self, row: dict[str, float]) -> float:
        """Predicted outcome for one (partial) row of regressors.

        Missing terms are treated as 0 — the paper's additive reading:
        "to estimate the fraction [...] for a white elderly woman, add the
        intercept, female and elderly coefficients".
        """
        value = self.coefficient("Intercept")
        for term, x in row.items():
            value += self.coefficient(term) * x
        return value

    def summary_rows(self) -> list[tuple[str, str]]:
        """(term, formatted coefficient with stars) rows for rendering."""
        return [
            (term, f"{self.coef[i]:+.4f}{significance_stars(float(self.p_values[i]))}")
            for i, term in enumerate(self.terms)
        ]

    def _index(self, term: str) -> int:
        try:
            return self.terms.index(term)
        except ValueError as exc:
            raise StatsError(f"unknown term {term!r}; have {self.terms}") from exc


def fit_ols(
    y: np.ndarray,
    X: np.ndarray,
    term_names: list[str],
    *,
    add_intercept: bool = True,
    robust: bool = False,
) -> OLSResult:
    """Fit ``y ~ X`` by ordinary least squares.

    Parameters
    ----------
    y:
        Outcome vector, shape (n,).
    X:
        Regressor matrix, shape (n, p), *without* intercept column.
    term_names:
        Names of the p columns of ``X``.
    add_intercept:
        Prepend an intercept column (default True).
    robust:
        Use HC1 heteroskedasticity-robust standard errors instead of the
        classical homoskedastic ones.  Delivery fractions are binomial
        proportions with impression-count-dependent variance, so the
        robust option is the defensible default for sensitivity checks
        (coefficients are identical either way).

    Raises
    ------
    StatsError
        On shape mismatch, insufficient degrees of freedom, or a singular
        design matrix.
    """
    y = np.asarray(y, dtype=float).ravel()
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise StatsError(f"X must be 2-d, got shape {X.shape}")
    n, p = X.shape
    if y.shape[0] != n:
        raise StatsError(f"y has {y.shape[0]} rows, X has {n}")
    if len(term_names) != p:
        raise StatsError(f"{len(term_names)} names for {p} columns")
    if add_intercept:
        X = np.column_stack([np.ones(n), X])
        names = ("Intercept", *term_names)
    else:
        names = tuple(term_names)
    k = X.shape[1]
    df_resid = n - k
    if df_resid <= 0:
        raise StatsError(f"not enough observations: n={n}, k={k}")

    xtx = X.T @ X
    try:
        xtx_inv = np.linalg.inv(xtx)
    except np.linalg.LinAlgError as exc:
        raise StatsError("singular design matrix (collinear regressors?)") from exc
    beta = xtx_inv @ (X.T @ y)
    resid = y - X @ beta
    rss = float(resid @ resid)
    sigma2 = rss / df_resid
    if robust:
        # HC1: White's sandwich estimator with the n/(n-k) small-sample
        # correction.
        meat = (X * (resid**2)[:, None]).T @ X
        cov = xtx_inv @ meat @ xtx_inv * (n / df_resid)
        stderr = np.sqrt(np.clip(np.diag(cov), 0.0, None))
    else:
        stderr = np.sqrt(np.clip(np.diag(xtx_inv) * sigma2, 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_values = np.where(stderr > 0, beta / stderr, np.inf * np.sign(beta))
    p_values = 2.0 * sps.t.sf(np.abs(t_values), df_resid)

    tss = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - rss / tss if tss > 0 else 0.0
    adj_r2 = 1.0 - (1.0 - r2) * (n - 1) / df_resid if df_resid > 0 else r2
    return OLSResult(
        terms=names,
        coef=beta,
        stderr=stderr,
        t_values=np.asarray(t_values, dtype=float),
        p_values=np.asarray(p_values, dtype=float),
        r_squared=float(r2),
        adj_r_squared=float(adj_r2),
        n_obs=n,
        df_resid=df_resid,
    )
