"""Significance stars and fixed-width table rendering.

Follows the paper's convention (§3.4): ``*`` p<0.05, ``**`` p<0.01,
``***`` p<0.001, no symbol otherwise.
"""

from __future__ import annotations

from repro.errors import StatsError

__all__ = ["significance_stars", "render_table", "holm_bonferroni"]


def significance_stars(p_value: float) -> str:
    """Return the paper's significance marker for a p-value."""
    if not 0.0 <= p_value <= 1.0:
        raise StatsError(f"p-value {p_value} outside [0, 1]")
    if p_value < 0.001:
        return "***"
    if p_value < 0.01:
        return "**"
    if p_value < 0.05:
        return "*"
    return ""


def holm_bonferroni(p_values: list[float], alpha: float = 0.05) -> list[bool]:
    """Holm-Bonferroni step-down multiple-comparison correction.

    The paper stars 21 coefficients per table at nominal levels; a referee
    would ask whether the headline effects survive family-wise control.
    Returns, per input p-value, whether it remains significant at
    family-wise level ``alpha``.
    """
    if not p_values:
        raise StatsError("no p-values supplied")
    if any(not 0.0 <= p <= 1.0 for p in p_values):
        raise StatsError("p-values must lie in [0, 1]")
    m = len(p_values)
    order = sorted(range(m), key=lambda i: p_values[i])
    significant = [False] * m
    for rank, index in enumerate(order):
        if p_values[index] <= alpha / (m - rank):
            significant[index] = True
        else:
            break  # step-down: once one fails, all larger p-values fail
    return significant


def render_table(
    headers: list[str],
    rows: list[list[str]],
    *,
    title: str | None = None,
    footer: str | None = None,
) -> str:
    """Render a fixed-width text table.

    All benches print their reproduced tables through this function so the
    terminal output can be compared side-by-side with the paper.
    """
    if any(len(row) != len(headers) for row in rows):
        raise StatsError("row width does not match header width")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if footer:
        lines.append(sep)
        lines.append(footer)
    return "\n".join(lines)
