"""Statistical routines used by the measurement methodology.

Everything the paper's analysis needs, implemented from scratch on
numpy/scipy:

* :mod:`repro.stats.ols` — ordinary least squares with t-tests, p-values
  and R² (Tables 3, 4a-c, A1);
* :mod:`repro.stats.logistic` — L2-regularised logistic regression via
  L-BFGS (latent direction finding in §5.4 and the platform's learned
  estimated-action-rate model);
* :mod:`repro.stats.mixedlm` — random-intercept linear mixed model fitted
  by profiled maximum likelihood (Table 5's per-job-type intercepts);
* :mod:`repro.stats.dummy` — dummy encoding of categorical treatments
  (§3.4 footnote 6: N-1 binary columns per N-level factor);
* :mod:`repro.stats.tables` — significance stars and fixed-width table
  rendering in the paper's style;
* :mod:`repro.stats.bootstrap` — nonparametric bootstrap confidence
  intervals for delivery fractions.
"""

from repro.stats.bootstrap import bootstrap_ci
from repro.stats.dummy import DummyCoding
from repro.stats.logistic import LogisticModel, fit_logistic
from repro.stats.mixedlm import MixedLMResult, fit_random_intercept
from repro.stats.ols import OLSResult, fit_ols
from repro.stats.permutation import (
    permutation_test_mean_difference,
    permutation_test_statistic,
)
from repro.stats.tables import render_table, significance_stars

__all__ = [
    "DummyCoding",
    "LogisticModel",
    "MixedLMResult",
    "OLSResult",
    "bootstrap_ci",
    "fit_logistic",
    "fit_ols",
    "fit_random_intercept",
    "permutation_test_mean_difference",
    "permutation_test_statistic",
    "render_table",
    "significance_stars",
]
