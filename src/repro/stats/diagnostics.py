"""Regression diagnostics.

The paper's Table-4 models regress *delivery fractions* on image dummies.
Fractions computed from finite impression counts are binomial proportions:
their variance depends on the count and the level, so homoskedasticity is
suspect by construction.  These diagnostics make that checkable:

* :func:`breusch_pagan` — the standard LM test for heteroskedasticity;
* :func:`cooks_distance` — per-observation influence (does one odd image
  drive a coefficient?);
* :func:`residual_normality` — D'Agostino-Pearson omnibus test on the
  residuals.

An extension bench runs them on the reproduced Table 4a and reports
whether classical or HC1 inference is the appropriate default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.errors import StatsError

__all__ = ["breusch_pagan", "cooks_distance", "residual_normality", "DiagnosticsReport", "diagnose"]


def _design(X: np.ndarray, add_intercept: bool) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise StatsError("X must be 2-d")
    if add_intercept:
        return np.column_stack([np.ones(X.shape[0]), X])
    return X


def breusch_pagan(
    y: np.ndarray, X: np.ndarray, *, add_intercept: bool = True
) -> tuple[float, float]:
    """Breusch-Pagan LM test; returns ``(statistic, p_value)``.

    Small p-values mean the squared residuals are predictable from the
    regressors — heteroskedasticity — and classical OLS standard errors
    are unreliable.
    """
    y = np.asarray(y, dtype=float).ravel()
    design = _design(X, add_intercept)
    n, k = design.shape
    if n <= k + 1:
        raise StatsError("too few observations for the BP test")
    beta, *_ = np.linalg.lstsq(design, y, rcond=None)
    resid = y - design @ beta
    squared = resid**2
    target = squared / squared.mean()
    gamma, *_ = np.linalg.lstsq(design, target, rcond=None)
    fitted = design @ gamma
    explained = float(((fitted - target.mean()) ** 2).sum())
    statistic = 0.5 * explained
    df = k - 1 if add_intercept else k
    if df < 1:
        raise StatsError("BP test needs at least one non-constant regressor")
    p_value = float(sps.chi2.sf(statistic, df))
    return float(statistic), p_value


def cooks_distance(
    y: np.ndarray, X: np.ndarray, *, add_intercept: bool = True
) -> np.ndarray:
    """Cook's distance per observation."""
    y = np.asarray(y, dtype=float).ravel()
    design = _design(X, add_intercept)
    n, k = design.shape
    if n <= k:
        raise StatsError("too few observations for influence diagnostics")
    gram_inv = np.linalg.pinv(design.T @ design)
    hat = np.einsum("ij,jk,ik->i", design, gram_inv, design)
    beta = gram_inv @ design.T @ y
    resid = y - design @ beta
    mse = float(resid @ resid) / (n - k)
    if mse == 0:
        return np.zeros(n)
    leverage_term = hat / np.clip((1.0 - hat) ** 2, 1e-12, None)
    return (resid**2 / (k * mse)) * leverage_term


def residual_normality(
    y: np.ndarray, X: np.ndarray, *, add_intercept: bool = True
) -> tuple[float, float]:
    """D'Agostino-Pearson omnibus normality test on OLS residuals."""
    y = np.asarray(y, dtype=float).ravel()
    design = _design(X, add_intercept)
    if y.shape[0] < 20:
        raise StatsError("normality test needs at least 20 observations")
    beta, *_ = np.linalg.lstsq(design, y, rcond=None)
    resid = y - design @ beta
    statistic, p_value = sps.normaltest(resid)
    return float(statistic), float(p_value)


@dataclass(frozen=True, slots=True)
class DiagnosticsReport:
    """Bundle of diagnostics for one fitted regression."""

    bp_statistic: float
    bp_p_value: float
    max_cooks_distance: float
    n_influential: int
    normality_p_value: float

    @property
    def heteroskedastic(self) -> bool:
        """Whether the BP test rejects homoskedasticity at 5%."""
        return self.bp_p_value < 0.05

    def recommends_robust_errors(self) -> bool:
        """True when HC1 standard errors are the defensible choice."""
        return self.heteroskedastic


def diagnose(y: np.ndarray, X: np.ndarray, *, add_intercept: bool = True) -> DiagnosticsReport:
    """Run all diagnostics; influence threshold is the common 4/n rule."""
    y = np.asarray(y, dtype=float).ravel()
    bp_stat, bp_p = breusch_pagan(y, X, add_intercept=add_intercept)
    distances = cooks_distance(y, X, add_intercept=add_intercept)
    _, norm_p = residual_normality(y, X, add_intercept=add_intercept)
    threshold = 4.0 / y.shape[0]
    return DiagnosticsReport(
        bp_statistic=bp_stat,
        bp_p_value=bp_p,
        max_cooks_distance=float(distances.max()),
        n_influential=int(np.sum(distances > threshold)),
        normality_p_value=norm_p,
    )
