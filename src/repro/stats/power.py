"""Statistical power of the paired-image design.

The paper runs 100 images (50 per race arm) and reports effects between
~0.03 and ~0.25; nothing in the paper says how small an effect the design
*could* have detected.  This module answers that:

* :func:`power_two_groups` — analytic power of the two-sample comparison
  underlying each dummy coefficient (noncentral-t);
* :func:`minimum_detectable_effect` — the effect size detectable with a
  target power at the design's n;
* :func:`simulated_power` — Monte-Carlo power directly on the OLS
  pipeline, for the exact design matrix (validates the analytic formula
  under dummy coding).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize
from scipy import stats as sps

from repro.errors import StatsError
from repro.stats.ols import fit_ols

__all__ = ["power_two_groups", "minimum_detectable_effect", "simulated_power"]


def power_two_groups(
    effect: float,
    sd: float,
    n_per_group: int,
    *,
    alpha: float = 0.05,
) -> float:
    """Power of a two-sided two-sample t-test.

    Parameters
    ----------
    effect:
        True mean difference between the groups (e.g. the Black-implied
        delivery lift, in fraction points).
    sd:
        Residual standard deviation of the per-image outcomes.
    n_per_group:
        Images per arm (the paper: 50 per race).
    """
    if sd <= 0:
        raise StatsError("sd must be positive")
    if n_per_group < 2:
        raise StatsError("need at least 2 images per group")
    if not 0 < alpha < 1:
        raise StatsError("alpha must be in (0, 1)")
    df = 2 * n_per_group - 2
    noncentrality = abs(effect) / (sd * np.sqrt(2.0 / n_per_group))
    critical = sps.t.ppf(1.0 - alpha / 2.0, df)
    power = sps.nct.sf(critical, df, noncentrality) + sps.nct.cdf(
        -critical, df, noncentrality
    )
    if not np.isfinite(power):
        # scipy's noncentral t underflows at large noncentrality; the
        # normal approximation is exact to many digits there.
        power = sps.norm.cdf(noncentrality - critical) + sps.norm.cdf(
            -noncentrality - critical
        )
    return float(min(max(power, 0.0), 1.0))


def minimum_detectable_effect(
    sd: float,
    n_per_group: int,
    *,
    alpha: float = 0.05,
    power: float = 0.8,
) -> float:
    """Smallest true effect detected with probability ``power``."""
    if not 0 < power < 1:
        raise StatsError("power must be in (0, 1)")

    def gap(effect: float) -> float:
        return power_two_groups(effect, sd, n_per_group, alpha=alpha) - power

    # Bracket: zero effect has power ~alpha < target; an absurdly large
    # effect has power ~1 > target.
    return float(optimize.brentq(gap, 1e-9, 10.0 * sd))


def simulated_power(
    effect: float,
    sd: float,
    n_per_group: int,
    rng: np.random.Generator,
    *,
    alpha: float = 0.05,
    n_simulations: int = 400,
) -> float:
    """Monte-Carlo power of the dummy-coded OLS on the same comparison."""
    if n_simulations < 50:
        raise StatsError("need at least 50 simulations")
    treated = np.repeat([1.0, 0.0], n_per_group)
    hits = 0
    for _ in range(n_simulations):
        y = treated * effect + rng.normal(0.0, sd, size=2 * n_per_group)
        model = fit_ols(y, treated[:, None], ["treated"])
        hits += model.is_significant("treated", alpha=alpha)
    return hits / n_simulations
