"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro campaign1 --seed 7 --scale paper
    python -m repro campaign4 --seed 11 --scale small
    python -m repro appendix-a --out results/
    python -m repro all --out results/
    python -m repro sweep --seeds 101,202,303 --jobs 4
    python -m repro sweep --seeds 101,202 --trace-out results/trace/
    python -m repro api-stats --fault-rate 0.1 --log-level INFO
    python -m repro api-stats --json
    python -m repro serve --scale small --workers 2 --port 8700
    python -m repro top --port 8700
    python -m repro trace results/trace/journal.jsonl --top 10
    python -m repro metrics results/trace/journal.jsonl
    python -m repro metrics results/trace/journal.jsonl --prometheus
    python -m repro cache info
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path

from repro.api import FaultInjectingTransport, MarketingApiClient
from repro.cache import ArtifactCache
from repro.core.analysis import table3_rows
from repro.core.campaign_runner import PairedCampaignRunner
from repro.core.design import build_balanced_audiences
from repro.core.experiments import (
    run_appendix_a,
    run_campaign1,
    run_campaign2,
    run_campaign3,
    run_campaign4,
    stock_specs,
)
from repro.core.figures import figure3_panels, figure4_panels, figure7_points
from repro.core.reporting import (
    render_congruence_ascii,
    render_identity_regressions,
    render_jobad_regressions,
    render_panel_ascii,
    render_single_regression,
    render_table2,
    render_table3,
    write_congruence_csv,
    write_panel_csv,
)
from repro.core.scheduler import CAMPAIGN_RUNNERS, render_rows, run_seed_sweep
from repro.core.world import SimulatedWorld, WorldConfig

#: --scale choice → WorldConfig preset.
_SCALE_PRESETS = {
    "small": WorldConfig.small,
    "paper": WorldConfig.paper,
    "xl": WorldConfig.xl,
    "xxl": WorldConfig.xxl,
}

__all__ = ["main"]

_EXPERIMENT_COMMANDS = (
    "campaign1",
    "campaign2",
    "campaign3",
    "campaign4",
    "appendix-a",
    "all",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the IMC'22 implied-identity ad delivery study",
    )
    commands = parser.add_subparsers(dest="command", required=True, metavar="command")

    experiment_options = argparse.ArgumentParser(add_help=False)
    experiment_options.add_argument("--seed", type=int, default=7, help="experiment seed")
    experiment_options.add_argument(
        "--scale",
        choices=("small", "paper", "xl", "xxl"),
        default="paper",
        help=(
            "world size preset (small is fast, paper matches the study's "
            "relative scale, xl is the million-user stress preset, xxl the "
            "ten-million-user columnar/mmap preset)"
        ),
    )
    for name in _EXPERIMENT_COMMANDS:
        sub = commands.add_parser(
            name, parents=[experiment_options], help=f"run {name.replace('-', ' ')}"
        )
        sub.add_argument(
            "--out", type=Path, default=None, help="directory for CSV figure series"
        )
        sub.add_argument(
            "--export",
            type=Path,
            default=None,
            help="directory for the project-website artifact (per-ad JSON + index)",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="build the world cold, bypassing the artifact cache",
        )

    sweep = commands.add_parser(
        "sweep",
        parents=[experiment_options],
        help="replicate one campaign across many seeds, optionally in parallel",
    )
    sweep.set_defaults(scale="small")
    sweep.add_argument(
        "--seeds",
        type=_seed_list,
        default=(101, 202, 303, 404, 505),
        help="comma-separated seed list (default 101,202,303,404,505)",
    )
    sweep.add_argument(
        "--campaign",
        choices=sorted(CAMPAIGN_RUNNERS),
        default="stability",
        help="campaign runner to replicate per seed",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    sweep.add_argument(
        "--out", type=Path, default=None, help="write the sweep rows as JSON here"
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="build every world cold, bypassing the artifact cache",
    )
    sweep.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="enable tracing and write journal.jsonl + manifest.json + trace.json here",
    )

    api_stats = commands.add_parser(
        "api-stats",
        help="run a reduced paired campaign and report per-endpoint client metrics",
        description=(
            "Run a reduced paired campaign and report per-endpoint client metrics. "
            "Metrics belong to the client instance: every invocation builds a fresh "
            "client, so counters always start from zero — there is no cross-run "
            "state to reset.  Embedders reusing one client between phases call "
            "client.metrics.reset(), which drops every series of its registry."
        ),
    )
    api_stats.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON document (endpoints, totals, faults, deliveries) instead of tables",
    )
    api_stats.add_argument("--seed", type=int, default=7, help="experiment seed")
    api_stats.add_argument(
        "--scale", choices=("small", "paper"), default="small", help="world size preset"
    )
    api_stats.add_argument(
        "--per-cell",
        type=int,
        default=1,
        help="stock images per demographic cell (20 cells; 1 => 40 ads)",
    )
    api_stats.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="inject transport faults (429/500/reset/slow) at this rate",
    )
    api_stats.add_argument(
        "--fault-seed", type=int, default=13, help="seed for the fault stream"
    )
    api_stats.add_argument(
        "--log-level",
        default=None,
        help="enable request logging at this level (e.g. DEBUG)",
    )
    api_stats.add_argument(
        "--no-cache",
        action="store_true",
        help="build the world cold, bypassing the artifact cache",
    )

    serve = commands.add_parser(
        "serve",
        help="serve the simulated Marketing API over HTTP (gateway workers)",
        description=(
            "Build a world and serve its Marketing API through the asyncio "
            "gateway: route-per-resource REST under /v1/, the envelope "
            "protocol at POST /graph, plus /healthz and /metrics.  With "
            "--workers N (default 2) the universe is placed in shared "
            "memory and N spawned worker processes serve one copy behind "
            "a single SO_REUSEPORT port; --workers 0 serves in-process "
            "on a background thread (no shared memory, useful for "
            "debugging).  Ctrl-C drains in-flight requests and exits."
        ),
    )
    serve.add_argument("--seed", type=int, default=7, help="world seed")
    serve.add_argument(
        "--scale",
        choices=("small", "paper", "xl", "xxl"),
        default="small",
        help="world size preset",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="gateway worker processes over shared memory (0 = in-process)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8700, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--accounts",
        default="serve",
        help="comma-separated ad account ids to provision in every worker",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=128,
        help="per-worker connection cap (beyond it: 503 + retry_after)",
    )
    serve.add_argument(
        "--rate-capacity",
        type=int,
        default=5000,
        help="token-bucket burst capacity per access token",
    )
    serve.add_argument(
        "--rate-refill",
        type=float,
        default=2500.0,
        help="token-bucket refill rate per second per access token",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="build the world cold, bypassing the artifact cache",
    )

    cache = commands.add_parser("cache", help="inspect or clear the artifact cache")
    cache.add_argument("action", choices=("info", "clear"), help="what to do")
    cache.add_argument(
        "--dir",
        type=Path,
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-worlds)",
    )

    trace = commands.add_parser(
        "trace",
        help="inspect a run journal: span tree, top spans, Chrome-trace/CSV export",
    )
    trace.add_argument("journal", type=Path, help="path to a journal.jsonl")
    trace.add_argument(
        "--top", type=int, default=15, help="how many span names in the totals table"
    )
    trace.add_argument(
        "--chrome",
        type=Path,
        default=None,
        help="also write a Chrome-trace JSON here (load in Perfetto)",
    )
    trace.add_argument(
        "--csv", type=Path, default=None, help="also write a flat per-span CSV here"
    )

    metrics = commands.add_parser(
        "metrics",
        help="render a run journal's metrics, merged across workers",
    )
    metrics.add_argument("journal", type=Path, help="path to a journal.jsonl")
    metrics.add_argument(
        "--prometheus",
        action="store_true",
        help=(
            "emit Prometheus text exposition format instead of tables "
            "(same format as the gateway's /metrics?format=prometheus)"
        ),
    )

    top = commands.add_parser(
        "top",
        help="live terminal view of a running gateway's merged metrics",
        description=(
            "Poll GET /metrics and GET /healthz on a running `repro serve` "
            "gateway and render cluster-wide RPS, p50/p99 latency from the "
            "shared histograms, rejection breakdown and per-worker health."
        ),
    )
    top.add_argument("--host", default="127.0.0.1", help="gateway host")
    top.add_argument("--port", type=int, default=8700, help="gateway port")
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls"
    )
    top.add_argument(
        "--once", action="store_true", help="render one frame and exit (no polling)"
    )
    return parser


def _seed_list(text: str) -> tuple[int, ...]:
    try:
        seeds = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad seed list {text!r}") from exc
    if not seeds:
        raise argparse.ArgumentTypeError("seed list is empty")
    return seeds


def _run_cache(args: argparse.Namespace) -> int:
    cache = ArtifactCache(args.dir) if args.dir else ArtifactCache.default()
    if args.action == "info":
        print(cache.info().render())
    else:
        info = cache.info()
        removed = cache.clear()
        print(f"removed {removed} entries ({info.total_bytes} bytes) from {cache.root}")
    return 0


def _run_api_stats(args: argparse.Namespace) -> int:
    """Drive one reduced paired campaign and print client observability."""
    if args.log_level:
        logging.basicConfig(
            level=args.log_level.upper(),
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )
    started = time.time()
    config = _SCALE_PRESETS[args.scale](args.seed)
    world = SimulatedWorld(config, cache=False if args.no_cache else None)
    account_id = "apistats"
    world.account(account_id)
    transport = world.server.handle
    injector = None
    if args.fault_rate > 0:
        injector = FaultInjectingTransport(
            transport, error_rate=args.fault_rate, seed=args.fault_seed
        )
        transport = injector
    client = MarketingApiClient(transport, world.config.access_token)
    audiences = build_balanced_audiences(
        client,
        account_id,
        world.fl_registry,
        world.nc_registry,
        world.rngs.get("sample.apistats"),
        sample_scale=world.config.sample_scale,
        name_prefix="apistats",
    )
    specs = stock_specs(world, per_cell=args.per_cell)
    runner = PairedCampaignRunner(client, account_id, audiences)
    deliveries, summary = runner.run(specs, "api-stats-probe")
    injected = (
        {kind.value: count for kind, count in sorted(
            injector.injected.items(), key=lambda kv: kv[0].value
        )}
        if injector is not None
        else None
    )
    if args.json:
        document = {
            **client.metrics.snapshot(),
            "injected_faults": injected,
            "paired_deliveries": len(deliveries),
            "impressions": summary.impressions,
            "requests_sent": client.requests_sent,
            "seconds": round(time.time() - started, 3),
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(client.metrics.render())
    if injected is not None:
        injected_text = ", ".join(f"{kind}={count}" for kind, count in injected.items())
        print(
            f"injected faults ({injector.total_injected} total): "
            f"{injected_text or 'none'}"
        )
    print(
        f"{len(deliveries)} paired deliveries, {summary.impressions:,} impressions, "
        f"{client.requests_sent} requests in {time.time() - started:.0f}s"
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Serve the simulated Marketing API until interrupted."""
    import signal
    import threading

    from repro.api.gateway import GatewayCluster, GatewayConfig, GatewayServer

    config = _SCALE_PRESETS[args.scale](args.seed)
    print(f"building world (seed={args.seed}, scale={args.scale})...", flush=True)
    world = SimulatedWorld(config, cache=False if args.no_cache else None)
    accounts = tuple(part.strip() for part in args.accounts.split(",") if part.strip())
    gateway_config = GatewayConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        rate_capacity=args.rate_capacity,
        rate_refill_per_second=args.rate_refill,
    )
    if args.workers == 0:
        from repro.cache.fingerprint import world_fingerprint

        for account_id in accounts:
            world.account(account_id)
        server = GatewayServer(
            world.server.handle,
            {config.access_token},
            gateway_config,
            # Scope the response cache to this world build's digest.
            world_version=world_fingerprint(config),
        )
        server.start()
        port, stop = server.port, server.stop
        detail = "in-process, no shared memory"
    else:
        cluster = GatewayCluster(
            world.universe,
            config,
            world.ear,
            workers=args.workers,
            gateway=gateway_config,
            accounts=accounts,
        )
        cluster.start()
        port, stop = cluster.port, cluster.stop
        detail = (
            f"{args.workers} workers sharing one "
            f"{cluster.shared_nbytes / 2**20:.0f} MiB universe block, "
            "one shared rate-limit plane"
        )
    print(f"serving on http://{args.host}:{port} ({detail})")
    print(f"  token:    {config.access_token}")
    print(f"  accounts: {', '.join(accounts) or '(none)'}")
    print("  REST:     /v1/act_<id>/...    envelope: POST /graph")
    print("  ops:      GET /healthz    GET /metrics[?format=prometheus]")
    if args.workers > 0:
        print(f"  watch:    repro top --host {args.host} --port {port}")
    print("Ctrl-C drains in-flight requests and exits.", flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("\ndraining...", flush=True)
        # A terminal Ctrl-C signals the whole process group (workers
        # drain themselves); ignore repeats so the drain can finish.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    finally:
        stop()
    print("stopped")
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    """Render (and optionally export) the spans of one run journal."""
    from repro.obs.export import (
        render_span_tree,
        render_top_spans,
        write_chrome_trace,
        write_spans_csv,
    )
    from repro.obs.journal import read_journal

    entries = read_journal(args.journal)
    print(render_span_tree(entries))
    print()
    print(render_top_spans(entries, top=args.top))
    if args.chrome is not None:
        print(f"wrote Chrome trace to {write_chrome_trace(entries, args.chrome)}")
    if args.csv is not None:
        print(f"wrote span CSV to {write_spans_csv(entries, args.csv)}")
    return 0


def _run_metrics(args: argparse.Namespace) -> int:
    """Merge and render a journal's metrics snapshots across workers."""
    from repro.obs.journal import read_journal
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    merged = 0
    for entry in read_journal(args.journal):
        if entry.get("kind") != "metrics":
            continue
        labels = {"worker": entry["pid"]} if entry.get("pid") is not None else None
        registry.merge(entry.get("snapshot") or {}, extra_labels=labels)
        merged += 1
    if args.prometheus:
        from repro.obs.prometheus import render_prometheus

        # Same exposition the live gateway serves, so offline journals
        # can be pushed to a Pushgateway / imported into Grafana.
        sys.stdout.write(render_prometheus(registry.snapshot()))
        return 0
    print(registry.render())
    print(f"\n({merged} worker snapshots merged from {args.journal})")
    return 0


def _run_top(args: argparse.Namespace) -> int:
    """Live terminal view over a running gateway's ops endpoints."""
    from repro.obs.top import run_top

    return run_top(
        args.host,
        args.port,
        interval=args.interval,
        iterations=1 if args.once else None,
    )


def _run_sweep(args: argparse.Namespace) -> int:
    started = time.time()
    rows = run_seed_sweep(
        args.seeds,
        campaign=args.campaign,
        scale=args.scale,
        jobs=args.jobs,
        cache=False if args.no_cache else None,
        trace_out=args.trace_out,
    )
    print(render_rows(rows))
    if args.trace_out is not None:
        print(
            f"wrote run observability (journal.jsonl, manifest.json, trace.json) "
            f"to {args.trace_out}"
        )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(rows, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {len(rows)} rows to {args.out}")
    print(
        f"{len(rows)} replicates ({args.campaign}, jobs={args.jobs}) "
        f"in {time.time() - started:.0f}s"
    )
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    started = time.time()
    config = _SCALE_PRESETS[args.scale](args.seed)
    print(f"building world (seed={args.seed}, scale={args.scale})...", flush=True)
    world = SimulatedWorld(config, cache=False if args.no_cache else None)
    sources = {timing.source for timing in world.build_report.values()}
    if sources == {"warm"}:
        print(f"world restored from cache in {world.build_seconds():.2f}s", flush=True)

    def maybe_export(name: str, result) -> None:
        if args.export is not None:
            from repro.core.export import export_campaign

            out = export_campaign(name, result.deliveries, result.summary, args.export)
            print(f"exported {name} to {out}")

    summaries = []
    if args.command in ("campaign1", "all"):
        result = run_campaign1(world)
        summaries.append((result.name, result.summary))
        maybe_export("campaign1", result)
        print(render_table3(table3_rows(result.deliveries)))
        print(render_identity_regressions(result.regressions, title="Table 4a"))
        for panel_id, series in figure3_panels(result.deliveries).items():
            print(render_panel_ascii(series))
            if args.out:
                write_panel_csv(series, args.out / f"figure3{panel_id}.csv")
        for panel_id, series in figure4_panels(result.deliveries).items():
            print(render_panel_ascii(series))
            if args.out:
                write_panel_csv(series, args.out / f"figure4{panel_id}.csv")
    if args.command in ("campaign2", "all"):
        result = run_campaign2(world)
        summaries.append((result.name, result.summary))
        maybe_export("campaign2", result)
        print(render_identity_regressions(result.regressions, title="Table 4b"))
    if args.command in ("campaign3", "all"):
        result = run_campaign3(world)
        summaries.append((result.name, result.summary))
        maybe_export("campaign3", result)
        print(render_identity_regressions(result.regressions, title="Table 4c"))
        for panel_id, series in figure3_panels(result.deliveries).items():
            print(render_panel_ascii(series))
            if args.out:
                write_panel_csv(series, args.out / f"figure5{panel_id}.csv")
    if args.command in ("campaign4", "all"):
        result = run_campaign4(world)
        summaries.append((result.name, result.summary))
        maybe_export("campaign4", result)
        print(render_jobad_regressions(result.regressions))
        panels = figure7_points(result.deliveries)
        for panel_id, points in panels.items():
            print(render_congruence_ascii(points, label=panel_id))
            if args.out:
                write_congruence_csv(points, args.out / f"figure7{panel_id}.csv")
    if args.command in ("appendix-a", "all"):
        result = run_appendix_a(world)
        print(
            f"review rejected {result.rejected_ads} ads; "
            f"{result.kept_images} balanced images analysed"
        )
        print(render_single_regression(result.regression, title="Table A1", column="% Black"))
    if summaries:
        print(render_table2(summaries))
    print(f"done in {time.time() - started:.0f}s")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "api-stats":
        return _run_api_stats(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "metrics":
        return _run_metrics(args)
    if args.command == "top":
        return _run_top(args)
    return _run_experiments(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
