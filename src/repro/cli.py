"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro campaign1 --seed 7 --scale paper
    python -m repro campaign4 --seed 11 --scale small
    python -m repro appendix-a --out results/
    python -m repro all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.analysis import table3_rows
from repro.core.experiments import (
    run_appendix_a,
    run_campaign1,
    run_campaign2,
    run_campaign3,
    run_campaign4,
)
from repro.core.figures import figure3_panels, figure4_panels, figure7_points
from repro.core.reporting import (
    render_congruence_ascii,
    render_identity_regressions,
    render_jobad_regressions,
    render_panel_ascii,
    render_single_regression,
    render_table2,
    render_table3,
    write_congruence_csv,
    write_panel_csv,
)
from repro.core.world import SimulatedWorld, WorldConfig

__all__ = ["main"]

_COMMANDS = ("campaign1", "campaign2", "campaign3", "campaign4", "appendix-a", "all")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the IMC'22 implied-identity ad delivery study",
    )
    parser.add_argument("command", choices=_COMMANDS, help="experiment to run")
    parser.add_argument("--seed", type=int, default=7, help="experiment seed")
    parser.add_argument(
        "--scale",
        choices=("small", "paper"),
        default="paper",
        help="world size preset (small is fast, paper matches the study's relative scale)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="directory for CSV figure series"
    )
    parser.add_argument(
        "--export",
        type=Path,
        default=None,
        help="directory for the project-website artifact (per-ad JSON + index)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    started = time.time()
    config = WorldConfig.small(args.seed) if args.scale == "small" else WorldConfig.paper(args.seed)
    print(f"building world (seed={args.seed}, scale={args.scale})...", flush=True)
    world = SimulatedWorld(config)

    def maybe_export(name: str, result) -> None:
        if args.export is not None:
            from repro.core.export import export_campaign

            out = export_campaign(name, result.deliveries, result.summary, args.export)
            print(f"exported {name} to {out}")

    summaries = []
    if args.command in ("campaign1", "all"):
        result = run_campaign1(world)
        summaries.append((result.name, result.summary))
        maybe_export("campaign1", result)
        print(render_table3(table3_rows(result.deliveries)))
        print(render_identity_regressions(result.regressions, title="Table 4a"))
        for panel_id, series in figure3_panels(result.deliveries).items():
            print(render_panel_ascii(series))
            if args.out:
                write_panel_csv(series, args.out / f"figure3{panel_id}.csv")
        for panel_id, series in figure4_panels(result.deliveries).items():
            print(render_panel_ascii(series))
            if args.out:
                write_panel_csv(series, args.out / f"figure4{panel_id}.csv")
    if args.command in ("campaign2", "all"):
        result = run_campaign2(world)
        summaries.append((result.name, result.summary))
        maybe_export("campaign2", result)
        print(render_identity_regressions(result.regressions, title="Table 4b"))
    if args.command in ("campaign3", "all"):
        result = run_campaign3(world)
        summaries.append((result.name, result.summary))
        maybe_export("campaign3", result)
        print(render_identity_regressions(result.regressions, title="Table 4c"))
        for panel_id, series in figure3_panels(result.deliveries).items():
            print(render_panel_ascii(series))
            if args.out:
                write_panel_csv(series, args.out / f"figure5{panel_id}.csv")
    if args.command in ("campaign4", "all"):
        result = run_campaign4(world)
        summaries.append((result.name, result.summary))
        maybe_export("campaign4", result)
        print(render_jobad_regressions(result.regressions))
        panels = figure7_points(result.deliveries)
        for panel_id, points in panels.items():
            print(render_congruence_ascii(points, label=panel_id))
            if args.out:
                write_congruence_csv(points, args.out / f"figure7{panel_id}.csv")
    if args.command in ("appendix-a", "all"):
        result = run_appendix_a(world)
        print(
            f"review rejected {result.rejected_ads} ads; "
            f"{result.kept_images} balanced images analysed"
        )
        print(render_single_regression(result.regression, title="Table A1", column="% Black"))
    if summaries:
        print(render_table2(summaries))
    print(f"done in {time.time() - started:.0f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
