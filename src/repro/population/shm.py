"""One universe copy, many processes: shared-memory column hosting.

The xl preset's :class:`~repro.population.universe.UserUniverse` is
~82 MiB of columns.  The gateway (:mod:`repro.api.gateway`) serves it
from N worker processes; without sharing, each worker would hold a
private copy — N × 82 MiB for data that is immutable after build.  This
module places every column (plus the matcher's pre-sorted PII index) in
a single :class:`multiprocessing.shared_memory.SharedMemory` block so
workers map the *same* physical pages:

* :class:`SharedUniverse` — the owner handle.  ``SharedUniverse.create``
  copies the universe's ``to_arrays()`` snapshot (and the matcher index,
  so attachers never re-sort) into one freshly created block and returns
  a picklable :class:`ShmManifest` describing the layout.
* :func:`attach` — rebuilds a read-only ``UserUniverse`` in another
  process whose arrays are zero-copy views over the shared block.  The
  matcher comes back through ``PiiMatcher.from_sorted_index``, skipping
  the argsort/fancy-index copies that would otherwise give each worker a
  private ~64 MB of hash bytes.

Lifecycle follows the stdlib's: the creating process ``unlink``s (once),
every process ``close``s its own mapping.  On Python < 3.13 the stdlib
registers *attached* segments with the resource tracker too, so a worker
exiting would tear the segment down under the owner; :func:`attach`
unregisters to restore create-owns semantics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ValidationError

# The alignment and resource-tracker conventions are shared with the
# telemetry block (repro.obs.cluster hosts them — obs is stdlib-only, so
# the import direction stays population -> obs).
from repro.obs.cluster import aligned_offset, tracker_reregister, tracker_unregister
from repro.population.universe import UserUniverse

__all__ = ["ShmManifest", "SharedUniverse", "attach"]


def _aligned(offset: int) -> int:
    """Round up to the shared 64-byte block alignment (cache-line sized;
    satisfies every column dtype's natural alignment)."""
    return aligned_offset(offset)


@dataclass(frozen=True)
class ShmManifest:
    """Layout of a universe inside one shared-memory block.

    Plain data — picklable across a ``spawn`` boundary and JSON-able for
    handing to workers via argv or an environment variable.  ``arrays``
    maps column name → ``(dtype_str, shape, offset)``; the two matcher
    index arrays travel under the reserved names ``__matcher_hashes__``
    and ``__matcher_user_ids__``.
    """

    shm_name: str
    total_bytes: int
    arrays: dict[str, tuple[str, tuple[int, ...], int]]
    scalars: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "shm_name": self.shm_name,
                "total_bytes": self.total_bytes,
                "arrays": {
                    name: [dtype, list(shape), offset]
                    for name, (dtype, shape, offset) in self.arrays.items()
                },
                "scalars": self.scalars,
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "ShmManifest":
        raw = json.loads(payload)
        return cls(
            shm_name=raw["shm_name"],
            total_bytes=int(raw["total_bytes"]),
            arrays={
                name: (dtype, tuple(shape), int(offset))
                for name, (dtype, shape, offset) in raw["arrays"].items()
            },
            scalars=dict(raw["scalars"]),
        )


_MATCHER_HASHES = "__matcher_hashes__"
_MATCHER_USER_IDS = "__matcher_user_ids__"


class SharedUniverse:
    """Owner handle for a universe hosted in shared memory.

    Created by the process that built (or loaded) the universe; workers
    receive :attr:`manifest` and call :func:`attach`.  The owner keeps
    the block alive for as long as any worker needs it and tears it down
    with :meth:`unlink` (``close`` releases only this process's mapping).

    Usage::

        shared = SharedUniverse.create(universe)
        try:
            spawn_workers(shared.manifest.to_json())
        finally:
            shared.unlink()
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: ShmManifest) -> None:
        self._shm = shm
        self.manifest = manifest
        self._unlinked = False

    @classmethod
    def create(cls, universe: UserUniverse, *, name: str | None = None) -> "SharedUniverse":
        """Copy ``universe``'s columns into a new shared-memory block."""
        arrays = dict(universe.to_arrays())
        scalars: dict[str, str] = {}
        for key in ("layout", "mode", "proxy_fidelity"):
            scalars[key] = str(arrays.pop(key))
        sorted_hashes, sorted_user_ids = universe.matcher.index_arrays()
        arrays[_MATCHER_HASHES] = sorted_hashes
        arrays[_MATCHER_USER_IDS] = sorted_user_ids

        layout: dict[str, tuple[str, tuple[int, ...], int]] = {}
        offset = 0
        for column_name, array in arrays.items():
            array = np.ascontiguousarray(array)
            arrays[column_name] = array
            offset = _aligned(offset)
            layout[column_name] = (array.dtype.str, array.shape, offset)
            offset += array.nbytes
        total = max(offset, 1)

        shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        try:
            for column_name, array in arrays.items():
                _, shape, start = layout[column_name]
                view = np.ndarray(shape, dtype=array.dtype, buffer=shm.buf, offset=start)
                view[...] = array
                del view  # release the exported buffer so close() can work
            manifest = ShmManifest(
                shm_name=shm.name, total_bytes=total, arrays=layout, scalars=scalars
            )
            return cls(shm, manifest)
        except BaseException:
            shm.close()
            shm.unlink()
            raise

    @property
    def name(self) -> str:
        """OS-level name of the block (``/dev/shm/<name>`` on Linux)."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Size of the shared block in bytes."""
        return self.manifest.total_bytes

    def attach_local(self) -> "AttachedUniverse":
        """Attach within the owning process (workers=0 / in-process mode)."""
        return attach(self.manifest)

    def unlink(self) -> None:
        """Release this mapping and destroy the block (idempotent)."""
        if not self._unlinked:
            self._unlinked = True
            self._shm.close()
            # Balance the books for the workers' unregisters before the
            # owner's unlink (see tracker_reregister's docstring).
            tracker_reregister(self._shm)
            self._shm.unlink()

    def __enter__(self) -> "SharedUniverse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


class AttachedUniverse:
    """A worker's view of a shared universe.

    Holds the :class:`~multiprocessing.shared_memory.SharedMemory`
    mapping that backs every array of :attr:`universe` — keep it alive
    as long as the universe is in use, and :meth:`close` when done.
    """

    def __init__(self, shm: shared_memory.SharedMemory, universe: UserUniverse) -> None:
        self._shm = shm
        self.universe = universe
        self._closed = False

    def close(self) -> None:
        """Drop the universe and release this process's mapping."""
        if self._closed:
            return
        self._closed = True
        # The universe's arrays are views into shm.buf; they must be
        # unreachable before close() or the exported-pointer check in
        # memoryview.release() raises BufferError.
        self.universe = None
        import gc

        gc.collect()
        self._shm.close()

    def __enter__(self) -> "AttachedUniverse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach(manifest: ShmManifest | str) -> AttachedUniverse:
    """Rebuild a zero-copy :class:`UserUniverse` from a shared block.

    ``manifest`` is the owner's :class:`ShmManifest` (or its JSON).  The
    returned handle owns this process's mapping; the universe's columns
    and matcher index are views over the owner's pages — attaching adds
    kilobytes, not another 82 MiB.
    """
    if isinstance(manifest, str):
        manifest = ShmManifest.from_json(manifest)
    try:
        shm = shared_memory.SharedMemory(name=manifest.shm_name)
    except FileNotFoundError as exc:
        raise ValidationError(
            f"shared universe block {manifest.shm_name!r} does not exist "
            "(owner exited or already unlinked it?)"
        ) from exc
    # Python < 3.13 tracks attached segments as if this process created
    # them, so the resource tracker would unlink the block when *any*
    # worker exits.  Unregister: only the owner may unlink.
    tracker_unregister(shm)
    try:
        views: dict[str, np.ndarray] = {}
        for column_name, (dtype, shape, offset) in manifest.arrays.items():
            views[column_name] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )
        matcher_index = (views.pop(_MATCHER_HASHES), views.pop(_MATCHER_USER_IDS))
        views["layout"] = np.array(manifest.scalars["layout"])
        views["mode"] = np.array(manifest.scalars["mode"])
        views["proxy_fidelity"] = np.array(float(manifest.scalars["proxy_fidelity"]))
        universe = UserUniverse.from_arrays(views, matcher_index=matcher_index)
        return AttachedUniverse(shm, universe)
    except BaseException:
        shm.close()
        raise
