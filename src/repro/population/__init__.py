"""Platform user population: adoption, activity, and PII matching.

The platform (``repro.platform``) serves ads to *platform users*, not to
voter records.  This package bridges the two worlds the way the paper's
methodology implicitly does:

* :class:`~repro.population.user.PlatformUser` — a user with demographics,
  home location, an *activity rate* (how often they browse), and the
  features the platform can actually observe (age, gender, and an interest
  cluster that is only a *proxy* for race — the platform never sees race);
* :class:`~repro.population.universe.UserUniverse` — built from the state
  registries via a per-demographic adoption model (not every voter has an
  account, and adoption is not uniform across demographics — one reason a
  balanced *target* audience does not imply a balanced *actual* audience);
* :class:`~repro.population.matching.PiiMatcher` — SHA-256-based Custom
  Audience matching from uploaded voter PII to users.
"""

from repro.population.activity import ActivityModel
from repro.population.columns import UserColumns
from repro.population.matching import PiiMatcher, hash_pii, hash_pii_array
from repro.population.shm import AttachedUniverse, SharedUniverse, ShmManifest, attach
from repro.population.universe import AdoptionModel, UserUniverse
from repro.population.user import InterestCluster, PlatformUser

__all__ = [
    "ActivityModel",
    "AdoptionModel",
    "AttachedUniverse",
    "InterestCluster",
    "PiiMatcher",
    "PlatformUser",
    "SharedUniverse",
    "ShmManifest",
    "UserColumns",
    "UserUniverse",
    "attach",
    "hash_pii",
    "hash_pii_array",
]
