"""Custom Audience PII matching.

Advertisers upload lists of personally identifiable information (names and
postal addresses in the paper's design); the platform normalises and hashes
each entry and matches the hashes against its user base.  Real platforms
hash with SHA-256 client-side — we do the same so the audit code never
handles raw PII past the upload boundary.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

from repro.errors import AudienceError
from repro.population.user import PlatformUser

__all__ = ["hash_pii", "PiiMatcher"]


def hash_pii(normalized_pii: str) -> str:
    """SHA-256 hash of a normalised PII string (hex digest).

    Normalisation (lower-casing, field ordering) happens upstream in
    :meth:`repro.voters.record.VoterRecord.pii_key`; this function only
    hashes, mirroring how platform SDKs hash customer lists client-side.
    """
    return hashlib.sha256(normalized_pii.encode("utf-8")).hexdigest()


class PiiMatcher:
    """Matches uploaded PII hashes to platform users.

    The matcher indexes every user that carries a ``pii_hash`` (i.e. the
    platform linked an account to offline identity).  Match *rates* below
    100% arise naturally: voters without accounts were never indexed.
    """

    def __init__(self, users: Iterable[PlatformUser]) -> None:
        self._by_hash: dict[str, PlatformUser] = {}
        for user in users:
            if user.pii_hash is None:
                continue
            if user.pii_hash in self._by_hash:
                raise AudienceError(f"duplicate PII hash for user {user.user_id}")
            self._by_hash[user.pii_hash] = user

    def __len__(self) -> int:
        return len(self._by_hash)

    def match(self, uploaded_hashes: Iterable[str]) -> list[PlatformUser]:
        """Return users matching the uploaded hashes (order-stable, unique)."""
        matched: list[PlatformUser] = []
        seen: set[str] = set()
        for pii_hash in uploaded_hashes:
            if pii_hash in seen:
                continue
            seen.add(pii_hash)
            user = self._by_hash.get(pii_hash)
            if user is not None:
                matched.append(user)
        return matched

    def match_rate(self, uploaded_hashes: Iterable[str]) -> float:
        """Fraction of uploaded hashes that matched a user."""
        hashes = list(uploaded_hashes)
        if not hashes:
            raise AudienceError("cannot compute match rate of an empty upload")
        return len(self.match(hashes)) / len(set(hashes))
