"""Custom Audience PII matching.

Advertisers upload lists of personally identifiable information (names and
postal addresses in the paper's design); the platform normalises and hashes
each entry and matches the hashes against its user base.  Real platforms
hash with SHA-256 client-side — we do the same so the audit code never
handles raw PII past the upload boundary.

Matching is columnar: the index is a sorted ``S64`` array of hex-digest
bytes plus the permutation back to user ids, and an upload is resolved
with one ``searchsorted`` pass instead of a per-hash dict probe — the
path that turns million-row Custom Audience uploads from a server
bottleneck into an array op.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.errors import AudienceError
from repro.population.columns import HASH_DTYPE
from repro.population.user import PlatformUser

__all__ = ["hash_pii", "hash_pii_array", "PiiMatcher"]

#: Chunk size of the batched hashing loop; bounds peak key-string memory.
_HASH_CHUNK = 65_536


def hash_pii(normalized_pii: str) -> str:
    """SHA-256 hash of a normalised PII string (hex digest).

    Normalisation (lower-casing, field ordering) happens upstream in
    :meth:`repro.voters.record.VoterRecord.pii_key`; this function only
    hashes, mirroring how platform SDKs hash customer lists client-side.
    """
    return hashlib.sha256(normalized_pii.encode("utf-8")).hexdigest()


def hash_pii_array(normalized_pii: Sequence[str]) -> np.ndarray:
    """Chunked SHA-256 over many normalised PII strings → ``S64`` array.

    The universe's columnar construction path hashes every adopted
    voter's key through here; chunking keeps the transient digest lists
    small while the per-chunk comprehension stays at C speed.
    """
    out = np.empty(len(normalized_pii), dtype=HASH_DTYPE)
    sha256 = hashlib.sha256
    for start in range(0, len(normalized_pii), _HASH_CHUNK):
        block = normalized_pii[start : start + _HASH_CHUNK]
        out[start : start + len(block)] = [
            sha256(key.encode("utf-8")).hexdigest() for key in block
        ]
    return out


def _upload_array(uploaded: Sequence[str]) -> np.ndarray:
    """Uploaded hash strings → ``S64`` array, invalid lengths neutralised.

    Entries that are not exactly 64 characters can never equal a stored
    hex digest; they map to the empty byte string (which no indexed user
    carries) instead of being silently truncated by the fixed-width cast.
    """
    return np.asarray(
        [value if len(value) == 64 else "" for value in uploaded], dtype=HASH_DTYPE
    )


class PiiMatcher:
    """Matches uploaded PII hashes to platform users.

    The matcher indexes every user that carries a ``pii_hash`` (i.e. the
    platform linked an account to offline identity).  Match *rates* below
    100% arise naturally: voters without accounts were never indexed.

    Construct either from an iterable of :class:`PlatformUser` (the
    historical API, still used by tests and ad-hoc callers) or — the path
    :class:`~repro.population.universe.UserUniverse` takes — directly
    from hash bytes via :meth:`from_hash_array`, which never materialises
    user objects.
    """

    def __init__(self, users: Iterable[PlatformUser]) -> None:
        indexed = [user for user in users if user.pii_hash is not None]
        hashes = np.asarray([user.pii_hash for user in indexed], dtype=HASH_DTYPE)
        user_ids = np.asarray([user.user_id for user in indexed], dtype=np.intp)
        by_id = {user.user_id: user for user in indexed}
        self._init_index(hashes, user_ids, by_id.__getitem__)

    @classmethod
    def from_hash_array(
        cls,
        hashes: np.ndarray,
        user_ids: np.ndarray,
        resolve: Callable[[int], PlatformUser],
    ) -> "PiiMatcher":
        """Build a matcher over pre-hashed columns.

        ``resolve`` maps a user id to its (lazily materialised) user and
        is only invoked by :meth:`match`; the index itself stays columnar.
        """
        matcher = cls.__new__(cls)
        matcher._init_index(
            np.asarray(hashes, dtype=HASH_DTYPE),
            np.asarray(user_ids, dtype=np.intp),
            resolve,
        )
        return matcher

    @classmethod
    def from_sorted_index(
        cls,
        sorted_hashes: np.ndarray,
        sorted_user_ids: np.ndarray,
        resolve: Callable[[int], PlatformUser],
    ) -> "PiiMatcher":
        """Adopt a pre-sorted hash index without copying it.

        The zero-copy attach path for shared-memory worlds
        (:mod:`repro.population.shm`): ``_init_index`` argsorts and
        fancy-indexes its inputs, which would give every gateway worker
        a private ~64 MB copy of the xl hash column.  Here the arrays —
        typically views over one shared block, produced by
        :meth:`index_arrays` on the owning process — are adopted as-is
        after a cheap ordering check.
        """
        sorted_hashes = np.asarray(sorted_hashes, dtype=HASH_DTYPE)
        sorted_user_ids = np.asarray(sorted_user_ids, dtype=np.intp)
        if sorted_hashes.size > 1:
            adjacent = sorted_hashes[1:] <= sorted_hashes[:-1]
            if bool(adjacent.any()):
                raise AudienceError(
                    "from_sorted_index requires strictly ascending hashes "
                    "(duplicates included)"
                )
        matcher = cls.__new__(cls)
        matcher._sorted_hashes = sorted_hashes
        matcher._sorted_user_ids = sorted_user_ids
        matcher._resolve = resolve
        return matcher

    def index_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The sorted (hashes, user_ids) index, for sharing or snapshots."""
        return self._sorted_hashes, self._sorted_user_ids

    def _init_index(
        self,
        hashes: np.ndarray,
        user_ids: np.ndarray,
        resolve: Callable[[int], PlatformUser],
    ) -> None:
        order = np.argsort(hashes, kind="stable")
        sorted_hashes = hashes[order]
        if sorted_hashes.size > 1:
            collided = np.flatnonzero(sorted_hashes[1:] == sorted_hashes[:-1])
            if collided.size:
                first = int(collided[0])
                ids = user_ids[order]
                raise AudienceError(
                    f"duplicate PII hash {sorted_hashes[first].decode('ascii')!r} "
                    f"shared by users {int(ids[first])} and {int(ids[first + 1])}"
                    + (
                        f" ({collided.size} colliding pairs in total)"
                        if collided.size > 1
                        else ""
                    )
                )
        self._sorted_hashes = sorted_hashes
        self._sorted_user_ids = user_ids[order]
        self._resolve = resolve

    def __len__(self) -> int:
        return int(self._sorted_hashes.size)

    def match_indices(self, uploaded_hashes: Iterable[str]) -> np.ndarray:
        """User ids matching the upload (order-stable, unique).

        The upload is deduplicated to first occurrences, then resolved
        with one ``searchsorted`` against the sorted hash index.  Returns
        an ``intp`` array; the empty upload matches nothing.
        """
        values = [str(value) for value in uploaded_hashes]
        if not values or self._sorted_hashes.size == 0:
            return np.empty(0, dtype=np.intp)
        upload = _upload_array(values)
        # np.unique's return_index marks first occurrences; sorting those
        # restores upload order for the deduplicated array.
        _, first_seen = np.unique(upload, return_index=True)
        upload = upload[np.sort(first_seen)]
        positions = np.searchsorted(self._sorted_hashes, upload)
        positions = np.minimum(positions, self._sorted_hashes.size - 1)
        hit = self._sorted_hashes[positions] == upload
        return self._sorted_user_ids[positions[hit]]

    def match(self, uploaded_hashes: Iterable[str]) -> list[PlatformUser]:
        """Return users matching the uploaded hashes (order-stable, unique)."""
        return [self._resolve(int(uid)) for uid in self.match_indices(uploaded_hashes)]

    def match_rate(self, uploaded_hashes: Iterable[str]) -> float:
        """Fraction of uploaded hashes that matched a user."""
        hashes = [str(value) for value in uploaded_hashes]
        if not hashes:
            raise AudienceError("cannot compute match rate of an empty upload")
        return self.match_indices(hashes).size / len(set(hashes))
