"""Struct-of-arrays storage for the platform user universe.

The population layer is the largest in-memory structure of a simulated
world — at the million-user scale the ROADMAP targets, one Python object
per user (plus its boxed fields) costs several hundred bytes each, and
every per-user loop over them dominates cold-build time.  This module
holds the columnar core that replaces that representation:

* :class:`UserColumns` — one compact, immutable array per user attribute
  (int8 enum codes, int32 age / DMA, float32 activity rates, fixed-width
  ``S64`` PII-hash bytes).  The whole universe is ~90 bytes/user, and
  every derived quantity (cell indices, eligibility masks, feature
  matrices) is an array op instead of a comprehension.
* The **code tables** that give enum members stable small-integer codes.
  Codes are positional in the ``*_ORDER`` lists below, and the orders are
  chosen to match the cell enumeration in :mod:`repro.platform.cells`
  (bucket-major, ``MALE`` before ``FEMALE``, ``WHITE``/``ALPHA`` before
  ``BLACK``/``BETA``) so cell indices reduce to arithmetic.

:class:`~repro.population.user.PlatformUser` objects still exist, but as
lazily-materialised views over these columns (see
:attr:`repro.population.universe.UserUniverse.users`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.errors import ValidationError
from repro.population.user import InterestCluster
from repro.types import AgeBucket, Gender, Race, State

__all__ = [
    "AGE_BUCKET_EDGES",
    "BUCKET_ORDER",
    "CLUSTER_CODES",
    "CLUSTER_ORDER",
    "GENDER_CODES",
    "GENDER_ORDER",
    "HASH_DTYPE",
    "RACE_CODES",
    "RACE_ORDER",
    "STATE_CODES",
    "STATE_ORDER",
    "UserColumns",
    "age_bucket_codes",
]

#: Study-binary race codes; order matches ``_RACES`` in platform.cells.
RACE_ORDER: list[Race] = [Race.WHITE, Race.BLACK]
#: Study-binary gender codes; order matches ``_GENDERS`` in platform.cells.
GENDER_ORDER: list[Gender] = [Gender.MALE, Gender.FEMALE]
#: Interest-cluster codes; order matches ``_CLUSTERS`` in platform.cells.
CLUSTER_ORDER: list[InterestCluster] = [InterestCluster.ALPHA, InterestCluster.BETA]
#: Home-state codes (FL, NC, OTHER — declaration order of the enum).
STATE_ORDER: list[State] = list(State)
#: Reporting age buckets in ascending order (code = digitize bin).
BUCKET_ORDER: list[AgeBucket] = list(AgeBucket)

RACE_CODES: dict[Race, int] = {member: i for i, member in enumerate(RACE_ORDER)}
GENDER_CODES: dict[Gender, int] = {member: i for i, member in enumerate(GENDER_ORDER)}
CLUSTER_CODES: dict[InterestCluster, int] = {
    member: i for i, member in enumerate(CLUSTER_ORDER)
}
STATE_CODES: dict[State, int] = {member: i for i, member in enumerate(STATE_ORDER)}

#: ``np.digitize`` edges mapping an age in years to its bucket code.
AGE_BUCKET_EDGES: np.ndarray = np.array(
    [bucket.lower for bucket in BUCKET_ORDER[1:]], dtype=np.int32
)

#: Fixed-width byte dtype of a hex SHA-256 digest.
HASH_DTYPE = np.dtype("S64")


def age_bucket_codes(ages: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.types.age_bucket_for`: age → bucket code."""
    return np.digitize(ages, AGE_BUCKET_EDGES).astype(np.int8)


@dataclass(frozen=True)
class UserColumns:
    """One immutable array per platform-user attribute.

    All per-user arrays share one length (the number of users); string
    attributes are dictionary-encoded (``zip_code``/``home_dma`` are
    indices into :attr:`zip_table` / :attr:`dma_table`).  ``pii_hash``
    holds the raw 64 hex bytes of each user's SHA-256 PII digest, ready
    for ``searchsorted`` matching without Python string objects.
    """

    race: np.ndarray  # int8, code into RACE_ORDER
    gender: np.ndarray  # int8, code into GENDER_ORDER
    interest_cluster: np.ndarray  # int8, code into CLUSTER_ORDER
    home_state: np.ndarray  # int8, code into STATE_ORDER
    age: np.ndarray  # int32, years
    home_dma: np.ndarray  # int32, index into dma_table
    zip_code: np.ndarray  # int32, index into zip_table
    activity_rate: np.ndarray  # float32, sessions/day
    high_poverty: np.ndarray  # bool
    pii_hash: np.ndarray  # S64 hex digest bytes
    dma_table: np.ndarray  # unicode, unique DMA names (sorted)
    zip_table: np.ndarray  # unicode, unique ZIP strings (sorted)

    _PER_USER = (
        "race",
        "gender",
        "interest_cluster",
        "home_state",
        "age",
        "home_dma",
        "zip_code",
        "activity_rate",
        "high_poverty",
        "pii_hash",
    )
    _DTYPES = {
        "race": np.int8,
        "gender": np.int8,
        "interest_cluster": np.int8,
        "home_state": np.int8,
        "age": np.int32,
        "home_dma": np.int32,
        "zip_code": np.int32,
        "activity_rate": np.float32,
        "high_poverty": np.bool_,
        "pii_hash": HASH_DTYPE,
    }

    def __post_init__(self) -> None:
        n = len(self.race)
        for name in self._PER_USER:
            column = getattr(self, name)
            if len(column) != n:
                raise ValidationError(
                    f"column {name!r} has {len(column)} rows, expected {n}"
                )

    @classmethod
    def build(cls, **arrays: np.ndarray) -> "UserColumns":
        """Construct with every column coerced to its declared compact dtype."""
        coerced = {}
        for field in fields(cls):
            value = np.asarray(arrays[field.name])
            target = cls._DTYPES.get(field.name)
            if target is not None and value.dtype != np.dtype(target):
                value = value.astype(target)
            coerced[field.name] = value
        return cls(**coerced)

    def __len__(self) -> int:
        return len(self.race)

    @property
    def nbytes(self) -> int:
        """Total byte footprint of every column (tables included)."""
        return sum(getattr(self, field.name).nbytes for field in fields(self))

    def age_bucket_codes(self) -> np.ndarray:
        """Per-user reporting-bucket codes (int8)."""
        return age_bucket_codes(self.age)

    def observed_cell_codes(self) -> np.ndarray:
        """Per-user platform-observable cell indices (intp)."""
        from repro.platform.cells import observed_cell_index_arrays

        return observed_cell_index_arrays(
            self.age_bucket_codes(), self.gender, self.interest_cluster, self.high_poverty
        )

    def gt_cell_codes(self) -> np.ndarray:
        """Per-user ground-truth cell indices (intp)."""
        from repro.platform.cells import gt_cell_index_arrays

        return gt_cell_index_arrays(
            self.age_bucket_codes(), self.gender, self.race, self.high_poverty
        )
