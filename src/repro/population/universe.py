"""Building the platform user universe from voter registries."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.population.activity import ActivityModel
from repro.population.matching import PiiMatcher, hash_pii
from repro.population.user import InterestCluster, PlatformUser
from repro.types import Demographics, Gender, Race
from repro.voters.registry import VoterRegistry

__all__ = ["AdoptionModel", "UserUniverse"]


@dataclass(frozen=True, slots=True)
class AdoptionModel:
    """Probability that a voter has a (linkable) platform account.

    Adoption differs by demographic — the paper notes each group "may not
    have the same percentage of voters with Facebook accounts" — so even a
    perfectly balanced uploaded list yields an unbalanced matched audience.
    """

    base_rate: float = 0.72
    race_multiplier: dict[Race, float] | None = None
    age_slope: float = -0.0025  # adoption declines slightly with age

    def probability(self, race: Race, age: int) -> float:
        """Adoption probability for one voter."""
        multipliers = self.race_multiplier or {Race.WHITE: 1.0, Race.BLACK: 0.97}
        p = self.base_rate * multipliers[race] * (1.0 + self.age_slope * (age - 40))
        return float(np.clip(p, 0.05, 0.99))


class UserUniverse:
    """All platform users derived from one or more voter registries.

    Parameters
    ----------
    registries:
        State registries to recruit users from.
    rng:
        Randomness source.
    adoption:
        Adoption model; defaults to :class:`AdoptionModel` defaults.
    activity:
        Activity model; defaults to a fresh :class:`ActivityModel` on the
        same rng.
    proxy_fidelity:
        Probability that a user's platform-observable interest cluster
        agrees with their race (ALPHA ↔ white, BETA ↔ Black).  The
        platform's delivery model sees only the cluster; at fidelity 0.5
        the proxy carries no information and race skews must vanish —
        an ablation bench checks exactly that.
    poverty_threshold:
        ZIP-poverty rate above which a user counts as living in a
        high-poverty area (the Appendix-A economic tier).  Sits between
        the paper's 12% (white median) and 16% (Black median) ZIP
        poverty observation.
    """

    def __init__(
        self,
        registries: list[VoterRegistry],
        rng: np.random.Generator,
        *,
        adoption: AdoptionModel | None = None,
        activity: ActivityModel | None = None,
        proxy_fidelity: float = 0.88,
        poverty_threshold: float = 0.14,
    ) -> None:
        if not registries:
            raise ValidationError("need at least one registry")
        if not 0.0 <= proxy_fidelity <= 1.0:
            raise ValidationError("proxy_fidelity must be in [0, 1]")
        self._rng = rng
        self._adoption = adoption or AdoptionModel()
        self._activity = activity or ActivityModel(rng)
        self._proxy_fidelity = proxy_fidelity
        self._users: list[PlatformUser] = []
        self._by_hash: dict[str, PlatformUser] = {}
        next_id = 0
        for registry in registries:
            for record in registry.records:
                race = record.study_race
                if race is None or record.gender is Gender.UNKNOWN:
                    # Voters outside the binary design never enter the
                    # study audiences; skip creating accounts for them to
                    # keep the universe lean.
                    continue
                if rng.random() >= self._adoption.probability(race, record.age):
                    continue
                congruent = rng.random() < proxy_fidelity
                if race is Race.BLACK:
                    cluster = InterestCluster.BETA if congruent else InterestCluster.ALPHA
                else:
                    cluster = InterestCluster.ALPHA if congruent else InterestCluster.BETA
                user = PlatformUser(
                    user_id=next_id,
                    demographics=Demographics(race=race, gender=record.gender, age=record.age),
                    home_state=record.state,
                    home_dma=record.dma,
                    zip_code=record.address.zip_code,
                    interest_cluster=cluster,
                    activity_rate=self._activity.rate_for(record.age_bucket, record.gender, race),
                    high_poverty=record.zip_poverty >= poverty_threshold,
                    pii_hash=hash_pii(record.pii_key()),
                )
                self._users.append(user)
                self._by_hash[user.pii_hash] = user
                next_id += 1
        if not self._users:
            raise ValidationError("adoption produced an empty universe")
        self._matcher = PiiMatcher(self._users)
        # Lazily-built per-user arrays (users are immutable after
        # construction, so each is computed once and shared by every
        # delivery run instead of being rebuilt per run).
        self._obs_cells: np.ndarray | None = None
        self._gt_cells: np.ndarray | None = None
        self._activity_rates: np.ndarray | None = None

    @property
    def users(self) -> list[PlatformUser]:
        """All platform users (do not mutate)."""
        return self._users

    @property
    def obs_cell_array(self) -> np.ndarray:
        """Per-user platform-observable cell indices (cached)."""
        if self._obs_cells is None:
            from repro.platform.cells import observed_cell_index

            self._obs_cells = np.array(
                [observed_cell_index(u) for u in self._users], dtype=np.intp
            )
        return self._obs_cells

    @property
    def gt_cell_array(self) -> np.ndarray:
        """Per-user ground-truth cell indices (cached)."""
        if self._gt_cells is None:
            from repro.platform.cells import gt_cell_index

            self._gt_cells = np.array(
                [gt_cell_index(u) for u in self._users], dtype=np.intp
            )
        return self._gt_cells

    @property
    def activity_rates(self) -> np.ndarray:
        """Per-user daily browsing-session rates (cached)."""
        if self._activity_rates is None:
            self._activity_rates = np.array(
                [u.activity_rate for u in self._users]
            )
        return self._activity_rates

    @property
    def matcher(self) -> PiiMatcher:
        """PII matcher over this universe."""
        return self._matcher

    @property
    def proxy_fidelity(self) -> float:
        """Race/cluster agreement probability used at construction."""
        return self._proxy_fidelity

    def __len__(self) -> int:
        return len(self._users)

    def by_id(self, user_id: int) -> PlatformUser:
        """Look up a user by id."""
        try:
            return self._users[user_id]
        except IndexError as exc:
            raise ValidationError(f"unknown user id {user_id}") from exc
