"""Building the platform user universe from voter registries."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.population.activity import ActivityModel
from repro.population.matching import PiiMatcher, hash_pii
from repro.population.user import InterestCluster, PlatformUser
from repro.types import Demographics, Gender, Race, State
from repro.voters.registry import VoterRegistry

__all__ = ["AdoptionModel", "UserUniverse"]


@dataclass(frozen=True, slots=True)
class AdoptionModel:
    """Probability that a voter has a (linkable) platform account.

    Adoption differs by demographic — the paper notes each group "may not
    have the same percentage of voters with Facebook accounts" — so even a
    perfectly balanced uploaded list yields an unbalanced matched audience.
    """

    base_rate: float = 0.72
    race_multiplier: dict[Race, float] | None = None
    age_slope: float = -0.0025  # adoption declines slightly with age

    def probability(self, race: Race, age: int) -> float:
        """Adoption probability for one voter."""
        multipliers = self.race_multiplier or {Race.WHITE: 1.0, Race.BLACK: 0.97}
        p = self.base_rate * multipliers[race] * (1.0 + self.age_slope * (age - 40))
        return float(np.clip(p, 0.05, 0.99))


class UserUniverse:
    """All platform users derived from one or more voter registries.

    Parameters
    ----------
    registries:
        State registries to recruit users from.
    rng:
        Randomness source.
    adoption:
        Adoption model; defaults to :class:`AdoptionModel` defaults.
    activity:
        Activity model; defaults to a fresh :class:`ActivityModel` on the
        same rng.
    proxy_fidelity:
        Probability that a user's platform-observable interest cluster
        agrees with their race (ALPHA ↔ white, BETA ↔ Black).  The
        platform's delivery model sees only the cluster; at fidelity 0.5
        the proxy carries no information and race skews must vanish —
        an ablation bench checks exactly that.
    poverty_threshold:
        ZIP-poverty rate above which a user counts as living in a
        high-poverty area (the Appendix-A economic tier).  Sits between
        the paper's 12% (white median) and 16% (Black median) ZIP
        poverty observation.
    """

    def __init__(
        self,
        registries: list[VoterRegistry],
        rng: np.random.Generator,
        *,
        adoption: AdoptionModel | None = None,
        activity: ActivityModel | None = None,
        proxy_fidelity: float = 0.88,
        poverty_threshold: float = 0.14,
    ) -> None:
        if not registries:
            raise ValidationError("need at least one registry")
        if not 0.0 <= proxy_fidelity <= 1.0:
            raise ValidationError("proxy_fidelity must be in [0, 1]")
        self._rng = rng
        self._adoption = adoption or AdoptionModel()
        self._activity = activity or ActivityModel(rng)
        self._proxy_fidelity = proxy_fidelity
        self._users: list[PlatformUser] = []
        self._by_hash: dict[str, PlatformUser] = {}
        next_id = 0
        for registry in registries:
            for record in registry.records:
                race = record.study_race
                if race is None or record.gender is Gender.UNKNOWN:
                    # Voters outside the binary design never enter the
                    # study audiences; skip creating accounts for them to
                    # keep the universe lean.
                    continue
                if rng.random() >= self._adoption.probability(race, record.age):
                    continue
                congruent = rng.random() < proxy_fidelity
                if race is Race.BLACK:
                    cluster = InterestCluster.BETA if congruent else InterestCluster.ALPHA
                else:
                    cluster = InterestCluster.ALPHA if congruent else InterestCluster.BETA
                user = PlatformUser(
                    user_id=next_id,
                    demographics=Demographics(race=race, gender=record.gender, age=record.age),
                    home_state=record.state,
                    home_dma=record.dma,
                    zip_code=record.address.zip_code,
                    interest_cluster=cluster,
                    activity_rate=self._activity.rate_for(record.age_bucket, record.gender, race),
                    high_poverty=record.zip_poverty >= poverty_threshold,
                    pii_hash=hash_pii(record.pii_key()),
                )
                self._users.append(user)
                self._by_hash[user.pii_hash] = user
                next_id += 1
        if not self._users:
            raise ValidationError("adoption produced an empty universe")
        self._matcher = PiiMatcher(self._users)
        # Lazily-built per-user arrays (users are immutable after
        # construction, so each is computed once and shared by every
        # delivery run instead of being rebuilt per run).
        self._obs_cells: np.ndarray | None = None
        self._gt_cells: np.ndarray | None = None
        self._activity_rates: np.ndarray | None = None

    @property
    def users(self) -> list[PlatformUser]:
        """All platform users (do not mutate)."""
        return self._users

    @property
    def obs_cell_array(self) -> np.ndarray:
        """Per-user platform-observable cell indices (cached)."""
        if self._obs_cells is None:
            from repro.platform.cells import observed_cell_index

            self._obs_cells = np.array(
                [observed_cell_index(u) for u in self._users], dtype=np.intp
            )
        return self._obs_cells

    @property
    def gt_cell_array(self) -> np.ndarray:
        """Per-user ground-truth cell indices (cached)."""
        if self._gt_cells is None:
            from repro.platform.cells import gt_cell_index

            self._gt_cells = np.array(
                [gt_cell_index(u) for u in self._users], dtype=np.intp
            )
        return self._gt_cells

    @property
    def activity_rates(self) -> np.ndarray:
        """Per-user daily browsing-session rates (cached)."""
        if self._activity_rates is None:
            self._activity_rates = np.array(
                [u.activity_rate for u in self._users]
            )
        return self._activity_rates

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar snapshot of every user, ready for ``np.savez``.

        The inverse of :meth:`from_arrays`; the artifact cache persists a
        grown universe this way so warm world builds skip both registry
        iteration and the adoption/proxy sampling passes.
        """
        users = self._users
        return {
            "proxy_fidelity": np.array(self._proxy_fidelity),
            "race": np.array([u.demographics.race.value for u in users]),
            "gender": np.array([u.demographics.gender.value for u in users]),
            "age": np.array([u.demographics.age for u in users], dtype=np.int32),
            "home_state": np.array([u.home_state.value for u in users]),
            "home_dma": np.array([u.home_dma for u in users]),
            "zip_code": np.array([u.zip_code for u in users]),
            "interest_cluster": np.array([u.interest_cluster.value for u in users]),
            "activity_rate": np.array([u.activity_rate for u in users], dtype=np.float64),
            "high_poverty": np.array([u.high_poverty for u in users], dtype=bool),
            "pii_hash": np.array([u.pii_hash or "" for u in users]),
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "UserUniverse":
        """Rebuild a universe from a :meth:`to_arrays` snapshot.

        User ids are positional, so the restored user list is
        element-for-element identical to the original's.  Construction
        machinery (rng, adoption and activity models) is not revived —
        it is only consulted while growing a universe from registries.
        """
        # Warm-load fast path (this runs on every cached world build):
        # enum members come from value maps instead of Enum calls and the
        # dataclasses take positional arguments.
        race_map = {r.value: r for r in Race}
        gender_map = {g.value: g for g in Gender}
        state_map = {s.value: s for s in State}
        cluster_map = {c.value: c for c in InterestCluster}
        users = [
            PlatformUser(
                i,
                Demographics(race_map[race], gender_map[gender], age),
                state_map[state],
                dma,
                zip_code,
                cluster_map[cluster],
                rate,
                poor,
                pii_hash or None,
            )
            for i, (
                race,
                gender,
                age,
                state,
                dma,
                zip_code,
                cluster,
                rate,
                poor,
                pii_hash,
            ) in enumerate(
                zip(
                    arrays["race"].tolist(),
                    arrays["gender"].tolist(),
                    arrays["age"].tolist(),
                    arrays["home_state"].tolist(),
                    arrays["home_dma"].tolist(),
                    arrays["zip_code"].tolist(),
                    arrays["interest_cluster"].tolist(),
                    arrays["activity_rate"].tolist(),
                    arrays["high_poverty"].tolist(),
                    arrays["pii_hash"].tolist(),
                )
            )
        ]
        if not users:
            raise ValidationError("cannot restore an empty universe")
        universe = cls.__new__(cls)
        universe._rng = None
        universe._adoption = None
        universe._activity = None
        universe._proxy_fidelity = float(arrays["proxy_fidelity"])
        universe._users = users
        universe._by_hash = {u.pii_hash: u for u in users if u.pii_hash is not None}
        universe._matcher = PiiMatcher(users)
        universe._obs_cells = None
        universe._gt_cells = None
        universe._activity_rates = None
        return universe

    @property
    def matcher(self) -> PiiMatcher:
        """PII matcher over this universe."""
        return self._matcher

    @property
    def proxy_fidelity(self) -> float:
        """Race/cluster agreement probability used at construction."""
        return self._proxy_fidelity

    def __len__(self) -> int:
        return len(self._users)

    def by_id(self, user_id: int) -> PlatformUser:
        """Look up a user by id."""
        try:
            return self._users[user_id]
        except IndexError as exc:
            raise ValidationError(f"unknown user id {user_id}") from exc
