"""Building the platform user universe from voter registries.

The universe is stored **columnarly** (:class:`~repro.population.columns.
UserColumns`): one compact array per attribute instead of one Python
object per user.  Two construction paths produce it:

* ``mode="columnar"`` (default) — eligibility masks, adoption
  probabilities, congruence draws and activity rates are all batched
  array ops over the registries' code columns, and PII hashing runs
  chunked over just the adopted voters.  This is the path that makes
  million-user worlds practical.
* ``mode="reference"`` — the original per-record scalar loop, kept as an
  oracle: it consumes the rng in the exact historical order, so the
  statistical-equivalence suite can pin the vectorized path against it.

The two modes draw from the rng in different orders and are therefore
statistically — not bitwise — equivalent (same marginal adoption rates,
proxy fidelity and cell composition; see
``tests/population/test_columnar.py``).

:class:`~repro.population.user.PlatformUser` objects still exist, but as
a lazily-materialised (and cached) view over the columns — code that
never touches :attr:`UserUniverse.users` never pays for them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.errors import ValidationError
from repro.geo.regions import ALL_DMAS, DMA_CODES
from repro.obs.tracer import get_tracer
from repro.population.activity import ActivityModel
from repro.population.columns import (
    CLUSTER_CODES,
    CLUSTER_ORDER,
    GENDER_CODES,
    GENDER_ORDER,
    HASH_DTYPE,
    RACE_CODES,
    RACE_ORDER,
    STATE_CODES,
    STATE_ORDER,
    UserColumns,
)
from repro.population.matching import PiiMatcher, hash_pii_array
from repro.population.user import InterestCluster, PlatformUser
from repro.types import Demographics, Gender, Race
from repro.voters.registry import VoterRegistry

__all__ = ["AdoptionModel", "UserUniverse"]

#: Modes accepted by :class:`UserUniverse`.
_MODES = ("columnar", "reference")

#: DMA name per global (state, dma) code, for decoding registry columns.
_DMA_NAMES = np.array([name for _, name in ALL_DMAS])


@dataclass(frozen=True, slots=True)
class AdoptionModel:
    """Probability that a voter has a (linkable) platform account.

    Adoption differs by demographic — the paper notes each group "may not
    have the same percentage of voters with Facebook accounts" — so even a
    perfectly balanced uploaded list yields an unbalanced matched audience.
    """

    base_rate: float = 0.72
    race_multiplier: dict[Race, float] | None = None
    age_slope: float = -0.0025  # adoption declines slightly with age

    def probability(self, race: Race, age: int) -> float:
        """Adoption probability for one voter."""
        multipliers = self.race_multiplier or {Race.WHITE: 1.0, Race.BLACK: 0.97}
        p = self.base_rate * multipliers[race] * (1.0 + self.age_slope * (age - 40))
        return float(np.clip(p, 0.05, 0.99))

    def probability_array(self, race_codes: np.ndarray, ages: np.ndarray) -> np.ndarray:
        """Batched :meth:`probability` over race-code / age arrays."""
        multipliers = self.race_multiplier or {Race.WHITE: 1.0, Race.BLACK: 0.97}
        table = np.array([multipliers[race] for race in RACE_ORDER])
        p = self.base_rate * table[race_codes] * (1.0 + self.age_slope * (ages - 40))
        return np.clip(p, 0.05, 0.99)


class UserUniverse:
    """All platform users derived from one or more voter registries.

    Parameters
    ----------
    registries:
        State registries to recruit users from.
    rng:
        Randomness source.
    adoption:
        Adoption model; defaults to :class:`AdoptionModel` defaults.
    activity:
        Activity model; defaults to a fresh :class:`ActivityModel` on the
        same rng.
    proxy_fidelity:
        Probability that a user's platform-observable interest cluster
        agrees with their race (ALPHA ↔ white, BETA ↔ Black).  The
        platform's delivery model sees only the cluster; at fidelity 0.5
        the proxy carries no information and race skews must vanish —
        an ablation bench checks exactly that.
    poverty_threshold:
        ZIP-poverty rate above which a user counts as living in a
        high-poverty area (the Appendix-A economic tier).  Sits between
        the paper's 12% (white median) and 16% (Black median) ZIP
        poverty observation.
    mode:
        ``"columnar"`` (vectorized construction, default) or
        ``"reference"`` (the original scalar loop, rng-order faithful).
    """

    def __init__(
        self,
        registries: list[VoterRegistry],
        rng: np.random.Generator,
        *,
        adoption: AdoptionModel | None = None,
        activity: ActivityModel | None = None,
        proxy_fidelity: float = 0.88,
        poverty_threshold: float = 0.14,
        mode: str = "columnar",
    ) -> None:
        if not registries:
            raise ValidationError("need at least one registry")
        if not 0.0 <= proxy_fidelity <= 1.0:
            raise ValidationError("proxy_fidelity must be in [0, 1]")
        if mode not in _MODES:
            raise ValidationError(f"unknown universe mode {mode!r}, expected one of {_MODES}")
        self._rng = rng
        self._adoption = adoption or AdoptionModel()
        self._activity = activity or ActivityModel(rng)
        self._proxy_fidelity = proxy_fidelity
        self._poverty_threshold = poverty_threshold
        self._mode = mode
        with get_tracer().span(
            "universe.build", {"mode": mode, "registries": len(registries)}
        ) as span:
            if mode == "columnar":
                columns = self._build_columnar(registries)
            else:
                columns = self._build_reference(registries)
            if len(columns) == 0:
                raise ValidationError("adoption produced an empty universe")
            self._finish_init(columns)
            span.set("users", len(columns))
            span.set("nbytes", columns.nbytes)

    # ------------------------------------------------------------------
    # Construction paths

    def _build_columnar(self, registries: list[VoterRegistry]) -> UserColumns:
        """Vectorized construction: mask → batched draws → packed columns."""
        rng = self._rng
        parts: dict[str, list[np.ndarray]] = {
            name: []
            for name in (
                "race", "gender", "cluster", "state", "age",
                "dma_global", "zip_local", "poverty", "activity", "pii_hash",
            )
        }
        zip_tables: list[np.ndarray] = []
        for registry in registries:
            cols = registry.study_columns()
            # Voters outside the binary study design never enter the
            # audiences; they get no account.
            eligible = (cols["study_race"] >= 0) & (cols["gender"] >= 0)
            idx = np.flatnonzero(eligible)
            race = cols["study_race"][idx]
            age = cols["age"][idx]
            adopted = rng.random(idx.size) < self._adoption.probability_array(race, age)
            keep = idx[adopted]
            race = race[adopted]
            age = age[adopted]
            gender = cols["gender"][keep]
            bucket = cols["age_bucket"][keep]
            congruent = rng.random(keep.size) < self._proxy_fidelity
            # Congruent: cluster code equals race code (ALPHA↔white,
            # BETA↔Black); incongruent: the other cluster.
            cluster = np.where(congruent, race, 1 - race).astype(np.int8)
            parts["race"].append(race)
            parts["gender"].append(gender)
            parts["cluster"].append(cluster)
            parts["state"].append(
                np.full(keep.size, STATE_CODES[registry.state], dtype=np.int8)
            )
            parts["age"].append(age)
            parts["dma_global"].append(cols["dma_code"][keep])
            # ZIPs stay dictionary-encoded: per-user indices into the
            # registry's small zip_table, offset into a concatenated
            # table space and re-encoded globally after the merge.
            parts["zip_local"].append(
                cols["zip_index"][keep].astype(np.int64)
                + sum(len(t) for t in zip_tables)
            )
            zip_tables.append(cols["zip_table"])
            parts["poverty"].append(cols["zip_poverty"][keep] >= self._poverty_threshold)
            parts["activity"].append(self._activity.rate_for_array(bucket, gender, race))
            parts["pii_hash"].append(registry.pii_hash_array(keep))
        merged = {name: np.concatenate(chunks) for name, chunks in parts.items()}
        zip_table, zip_idx = self._encode_used(
            np.concatenate(zip_tables), merged["zip_local"]
        )
        dma_table, dma_idx = self._encode_used(_DMA_NAMES, merged["dma_global"])
        return UserColumns.build(
            race=merged["race"],
            gender=merged["gender"],
            interest_cluster=merged["cluster"],
            home_state=merged["state"],
            age=merged["age"],
            home_dma=dma_idx,
            zip_code=zip_idx,
            activity_rate=merged["activity"],
            high_poverty=merged["poverty"],
            pii_hash=merged["pii_hash"],
            dma_table=dma_table,
            zip_table=zip_table,
        )

    @staticmethod
    def _encode_used(table: np.ndarray, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Re-encode dictionary codes against the *used* slice of ``table``.

        Equivalent to ``np.unique(table[codes], return_inverse=True)``
        (the sorted table of values at least one user carries, plus the
        per-user inverse) but without ever materialising a per-user
        string array — only the small dictionary is touched.
        """
        used = np.unique(codes)
        new_table, used_inverse = np.unique(table[used], return_inverse=True)
        lookup = np.empty(len(table), dtype=np.int64)
        lookup[used] = used_inverse
        return new_table, lookup[codes]

    def _build_reference(self, registries: list[VoterRegistry]) -> UserColumns:
        """The original scalar loop, preserved as an rng-faithful oracle.

        Consumes the rng record-by-record exactly as the pre-columnar
        implementation did (adoption draw, then — only if adopted — a
        congruence draw and a gamma activity draw), then packs the same
        compact columns the vectorized path produces.
        """
        rng = self._rng
        race_codes: list[int] = []
        gender_codes: list[int] = []
        cluster_codes: list[int] = []
        state_codes: list[int] = []
        ages: list[int] = []
        dmas: list[str] = []
        zips: list[str] = []
        poverty: list[bool] = []
        rates: list[float] = []
        pii_keys: list[str] = []
        for registry in registries:
            state_code = STATE_CODES[registry.state]
            for record in registry.records:
                race = record.study_race
                if race is None or record.gender is Gender.UNKNOWN:
                    continue
                if rng.random() >= self._adoption.probability(race, record.age):
                    continue
                congruent = rng.random() < self._proxy_fidelity
                if race is Race.BLACK:
                    cluster = InterestCluster.BETA if congruent else InterestCluster.ALPHA
                else:
                    cluster = InterestCluster.ALPHA if congruent else InterestCluster.BETA
                race_codes.append(RACE_CODES[race])
                gender_codes.append(GENDER_CODES[record.gender])
                cluster_codes.append(CLUSTER_CODES[cluster])
                state_codes.append(state_code)
                ages.append(record.age)
                dmas.append(record.dma)
                zips.append(record.address.zip_code)
                poverty.append(record.zip_poverty >= self._poverty_threshold)
                rates.append(
                    self._activity.rate_for(record.age_bucket, record.gender, race)
                )
                pii_keys.append(record.pii_key())
        zip_table, zip_idx = np.unique(np.asarray(zips, dtype=np.str_), return_inverse=True)
        dma_table, dma_idx = np.unique(np.asarray(dmas, dtype=np.str_), return_inverse=True)
        return UserColumns.build(
            race=np.asarray(race_codes, dtype=np.int8),
            gender=np.asarray(gender_codes, dtype=np.int8),
            interest_cluster=np.asarray(cluster_codes, dtype=np.int8),
            home_state=np.asarray(state_codes, dtype=np.int8),
            age=np.asarray(ages, dtype=np.int32),
            home_dma=dma_idx,
            zip_code=zip_idx,
            activity_rate=np.asarray(rates, dtype=np.float32),
            high_poverty=np.asarray(poverty, dtype=bool),
            pii_hash=hash_pii_array(pii_keys),
            dma_table=dma_table,
            zip_table=zip_table,
        )

    def _finish_init(
        self,
        columns: UserColumns,
        matcher_index: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Shared tail of construction and :meth:`from_arrays` restore.

        ``matcher_index`` — pre-sorted ``(hashes, user_ids)`` arrays from
        :meth:`PiiMatcher.index_arrays` — skips the argsort/fancy-index
        copies, the path shared-memory attaches take so each worker's
        matcher is a view over the owner's block instead of a private
        ~64 MB duplicate.
        """
        self._columns = columns
        self._users: list[PlatformUser] | None = None
        self._obs_cells: np.ndarray | None = None
        self._gt_cells: np.ndarray | None = None
        self._home_dma_codes: np.ndarray | None = None
        if matcher_index is not None:
            self._matcher = PiiMatcher.from_sorted_index(*matcher_index, self.by_id)
        else:
            indexed = np.flatnonzero(columns.pii_hash != b"")
            self._matcher = PiiMatcher.from_hash_array(
                columns.pii_hash[indexed], indexed, self.by_id
            )

    # ------------------------------------------------------------------
    # Views

    @property
    def columns(self) -> UserColumns:
        """The struct-of-arrays storage backing this universe."""
        return self._columns

    @property
    def mode(self) -> str:
        """Construction mode ('columnar' or 'reference')."""
        return self._mode

    @property
    def users(self) -> list[PlatformUser]:
        """All platform users, lazily materialised from the columns.

        The list is built once and cached, so object identity is stable
        (``universe.by_id(i) is universe.users[i]``) — but code that only
        needs arrays should prefer :attr:`columns` and never trigger this.
        """
        if self._users is None:
            c = self._columns
            dma_names = c.dma_table.tolist()
            zip_strings = c.zip_table.tolist()
            hashes = np.char.decode(c.pii_hash, "ascii").tolist()
            self._users = [
                PlatformUser(
                    i,
                    Demographics(RACE_ORDER[race], GENDER_ORDER[gender], age),
                    STATE_ORDER[state],
                    dma_names[dma],
                    zip_strings[zip_idx],
                    CLUSTER_ORDER[cluster],
                    rate,
                    poor,
                    pii or None,
                )
                for i, (
                    race, gender, age, state, dma, zip_idx, cluster, rate, poor, pii
                ) in enumerate(
                    zip(
                        c.race.tolist(),
                        c.gender.tolist(),
                        c.age.tolist(),
                        c.home_state.tolist(),
                        c.home_dma.tolist(),
                        c.zip_code.tolist(),
                        c.interest_cluster.tolist(),
                        c.activity_rate.tolist(),
                        c.high_poverty.tolist(),
                        hashes,
                    )
                )
            ]
        return self._users

    @property
    def obs_cell_array(self) -> np.ndarray:
        """Per-user platform-observable cell indices (cached)."""
        if self._obs_cells is None:
            self._obs_cells = self._columns.observed_cell_codes()
        return self._obs_cells

    @property
    def gt_cell_array(self) -> np.ndarray:
        """Per-user ground-truth cell indices (cached)."""
        if self._gt_cells is None:
            self._gt_cells = self._columns.gt_cell_codes()
        return self._gt_cells

    @property
    def activity_rates(self) -> np.ndarray:
        """Per-user daily browsing-session rates (float32 column)."""
        return self._columns.activity_rate

    @property
    def home_dma_code_array(self) -> np.ndarray:
        """Per-user global (state, DMA) codes into :data:`~repro.geo.regions.ALL_DMAS`."""
        if self._home_dma_codes is None:
            c = self._columns
            table = np.full((len(STATE_ORDER), len(c.dma_table)), -1, dtype=np.int32)
            for s_i, state in enumerate(STATE_ORDER):
                for d_i, name in enumerate(c.dma_table.tolist()):
                    table[s_i, d_i] = DMA_CODES.get((state, name), -1)
            self._home_dma_codes = table[c.home_state, c.home_dma]
        return self._home_dma_codes

    # ------------------------------------------------------------------
    # Serialization

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Columnar snapshot of every user, ready for ``np.savez``.

        The inverse of :meth:`from_arrays`.  Because the universe *is*
        columnar, this is a near-zero-copy dict of the live columns plus
        a layout tag — the artifact cache persists a grown universe this
        way, and warm world builds hand the arrays straight back to
        :class:`UserColumns`.
        """
        out = {
            field.name: getattr(self._columns, field.name)
            for field in fields(UserColumns)
        }
        out["layout"] = np.array("columnar-v1")
        out["mode"] = np.array(self._mode)
        out["proxy_fidelity"] = np.array(self._proxy_fidelity)
        return out

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        matcher_index: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "UserUniverse":
        """Rebuild a universe from a :meth:`to_arrays` snapshot.

        User ids are positional, so the restored universe is
        column-for-column identical to the original.  Construction
        machinery (rng, adoption and activity models) is not revived —
        it is only consulted while growing a universe from registries.
        Snapshots from the pre-columnar layout (one object-dtype array
        per attribute, no ``layout`` tag) are converted on load.

        ``matcher_index`` optionally supplies the pre-sorted PII index
        (see :meth:`PiiMatcher.index_arrays`); shared-memory attaches
        pass it so rebuilding never copies the hash column.
        """
        if "layout" in arrays:
            columns = UserColumns.build(
                **{field.name: arrays[field.name] for field in fields(UserColumns)}
            )
        else:
            columns = cls._columns_from_legacy(arrays)
        if len(columns) == 0:
            raise ValidationError("cannot restore an empty universe")
        universe = cls.__new__(cls)
        universe._rng = None
        universe._adoption = None
        universe._activity = None
        universe._proxy_fidelity = float(arrays["proxy_fidelity"])
        universe._poverty_threshold = None
        universe._mode = str(arrays["mode"]) if "mode" in arrays else "columnar"
        universe._finish_init(columns, matcher_index=matcher_index)
        return universe

    @staticmethod
    def _columns_from_legacy(arrays: dict[str, np.ndarray]) -> UserColumns:
        """Convert a pre-columnar snapshot (enum-value string arrays)."""
        race_by_value = {race.value: code for race, code in RACE_CODES.items()}
        gender_by_value = {g.value: code for g, code in GENDER_CODES.items()}
        cluster_by_value = {c.value: code for c, code in CLUSTER_CODES.items()}
        state_by_value = {s.value: code for s, code in STATE_CODES.items()}
        zip_table, zip_idx = np.unique(arrays["zip_code"], return_inverse=True)
        dma_table, dma_idx = np.unique(arrays["home_dma"], return_inverse=True)
        return UserColumns.build(
            race=np.asarray([race_by_value[v] for v in arrays["race"].tolist()]),
            gender=np.asarray([gender_by_value[v] for v in arrays["gender"].tolist()]),
            interest_cluster=np.asarray(
                [cluster_by_value[v] for v in arrays["interest_cluster"].tolist()]
            ),
            home_state=np.asarray(
                [state_by_value[v] for v in arrays["home_state"].tolist()]
            ),
            age=arrays["age"],
            home_dma=dma_idx,
            zip_code=zip_idx,
            activity_rate=arrays["activity_rate"],
            high_poverty=arrays["high_poverty"],
            pii_hash=np.asarray(arrays["pii_hash"], dtype=HASH_DTYPE),
            dma_table=dma_table,
            zip_table=zip_table,
        )

    # ------------------------------------------------------------------

    @property
    def matcher(self) -> PiiMatcher:
        """PII matcher over this universe."""
        return self._matcher

    @property
    def proxy_fidelity(self) -> float:
        """Race/cluster agreement probability used at construction."""
        return self._proxy_fidelity

    def __len__(self) -> int:
        return len(self._columns)

    def by_id(self, user_id: int) -> PlatformUser:
        """Look up a user by id (materialises the user view on first use)."""
        try:
            return self.users[user_id]
        except IndexError as exc:
            raise ValidationError(f"unknown user id {user_id}") from exc
