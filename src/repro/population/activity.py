"""Per-demographic activity model.

How often a user browses determines how many auction opportunities they
generate.  The paper repeatedly observes that delivery skews old — over 70%
of impressions went to users 45+ although they were only 58% of the target
audience (§5.3) — and attributes this to demographic differences in
activity and pricing.  This model supplies the activity half of that
explanation; the pricing half lives in
:class:`repro.platform.competition.CompetitionModel`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.population.columns import BUCKET_ORDER, GENDER_ORDER, RACE_ORDER
from repro.types import AgeBucket, Gender, Race

__all__ = ["ActivityModel"]

#: Relative browsing intensity per age bucket.  Older users spend more
#: feed-time; calibrated so the all-ages experiments land >70% of
#: impressions on 45+ users given the paper's Table-1 audience shape.
_AGE_ACTIVITY: dict[AgeBucket, float] = {
    AgeBucket.B18_24: 0.80,
    AgeBucket.B25_34: 0.92,
    AgeBucket.B35_44: 1.08,
    AgeBucket.B45_54: 1.42,
    AgeBucket.B55_64: 1.75,
    AgeBucket.B65_PLUS: 2.05,
}

#: Relative intensity by race; the Table-3/4 intercepts (≈57% of delivery
#: to Black users in a balanced audience for a white-adult-male image)
#: imply Black users generate somewhat more deliverable opportunities.
_RACE_ACTIVITY: dict[Race, float] = {Race.WHITE: 1.0, Race.BLACK: 1.45}

_GENDER_ACTIVITY: dict[Gender, float] = {
    Gender.FEMALE: 1.02,
    Gender.MALE: 1.0,
    Gender.UNKNOWN: 1.0,
}

#: The same multipliers as lookup tables indexed by the small-integer
#: codes of :mod:`repro.population.columns`, for the batched sampler.
_AGE_TABLE = np.array([_AGE_ACTIVITY[b] for b in BUCKET_ORDER])
_RACE_TABLE = np.array([_RACE_ACTIVITY[r] for r in RACE_ORDER])
_GENDER_TABLE = np.array([_GENDER_ACTIVITY[g] for g in GENDER_ORDER])

#: Relative traffic per hour of day (mean 1.0): a trough overnight, a
#: lunchtime bump and an evening peak — the diurnal shape every feed
#: exhibits.  The delivery engine multiplies session intensity by this,
#: which is what makes even pacing a nontrivial control problem.
DIURNAL_WEIGHTS: tuple[float, ...] = (
    0.3621, 0.2586, 0.2069, 0.1862, 0.2069, 0.3103,  # 00-05
    0.5172, 0.7759, 0.9828, 1.0862, 1.1379, 1.2414,  # 06-11
    1.3966, 1.3448, 1.1897, 1.1379, 1.1897, 1.2931,  # 12-17
    1.5000, 1.7586, 1.9138, 1.8103, 1.3966, 0.7966,  # 18-23
)


def diurnal_weight(hour: int) -> float:
    """Traffic multiplier for ``hour`` (0-23)."""
    if not 0 <= hour < 24:
        raise ValidationError(f"hour {hour} outside a day")
    return DIURNAL_WEIGHTS[hour]


class ActivityModel:
    """Samples per-user activity rates and per-day session counts.

    ``base_sessions`` is the mean number of browsing sessions per day for a
    reference user (young white male); each session offers one ad slot to
    the auction.  Individual heterogeneity is Gamma-distributed.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        base_sessions: float = 1.0,
        heterogeneity: float = 0.35,
    ) -> None:
        if base_sessions <= 0:
            raise ValidationError("base_sessions must be positive")
        if heterogeneity < 0:
            raise ValidationError("heterogeneity must be non-negative")
        self._rng = rng
        self._base = base_sessions
        self._heterogeneity = heterogeneity

    def rate_for(self, age_bucket: AgeBucket, gender: Gender, race: Race) -> float:
        """Sample an individual activity rate (sessions/day)."""
        mean = (
            self._base
            * _AGE_ACTIVITY[age_bucket]
            * _RACE_ACTIVITY[race]
            * _GENDER_ACTIVITY[gender]
        )
        if self._heterogeneity == 0:
            return mean
        shape = 1.0 / self._heterogeneity
        return float(self._rng.gamma(shape, mean / shape))

    def rate_for_array(
        self,
        bucket_codes: np.ndarray,
        gender_codes: np.ndarray,
        race_codes: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`rate_for` over demographic code arrays.

        One vectorized gamma draw replaces a per-user sampling call; the
        draw order differs from the scalar path, so the two are
        statistically — not bitwise — equivalent (pinned by the columnar
        equivalence suite).
        """
        mean = (
            self._base
            * _AGE_TABLE[bucket_codes]
            * _RACE_TABLE[race_codes]
            * _GENDER_TABLE[gender_codes]
        )
        if self._heterogeneity == 0:
            return mean
        shape = 1.0 / self._heterogeneity
        return self._rng.gamma(shape, mean / shape)

    def sessions_today(self, activity_rate: float, hours: float = 24.0) -> int:
        """Sample the number of sessions in a window of ``hours`` hours."""
        if hours <= 0:
            raise ValidationError("hours must be positive")
        lam = activity_rate * hours / 24.0
        return int(self._rng.poisson(lam))

    @staticmethod
    def expected_rate(age_bucket: AgeBucket, gender: Gender, race: Race, base: float = 1.0) -> float:
        """Deterministic mean rate (for tests and analytical checks)."""
        return base * _AGE_ACTIVITY[age_bucket] * _RACE_ACTIVITY[race] * _GENDER_ACTIVITY[gender]
