"""The platform user model."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.types import AgeBucket, Demographics, Gender, Race, State

__all__ = ["InterestCluster", "PlatformUser"]


class InterestCluster(enum.Enum):
    """Coarse behavioural cluster the platform observes for each user.

    The platform's delivery model never sees self-reported race — but it
    does see behavioural features that *correlate* with race (pages
    followed, content engaged with).  We compress those into a binary
    cluster that matches the user's race with probability
    ``UserUniverse.proxy_fidelity``; the delivery optimizer can therefore
    discriminate by race only through this noisy proxy, exactly the
    mechanism the paper's discussion attributes the skew to.
    """

    ALPHA = "alpha"
    BETA = "beta"


@dataclass(frozen=True, slots=True)
class PlatformUser:
    """One platform user.

    ``demographics`` is the ground truth (known to the experimenter via the
    voter file, never to the platform's model); ``observed`` fields —
    ``age_bucket``, ``gender`` and ``interest_cluster`` — are what the
    platform's models may condition on.  ``activity_rate`` scales how many
    browsing sessions the user generates per day.
    """

    user_id: int
    demographics: Demographics
    home_state: State
    home_dma: str
    zip_code: str
    interest_cluster: InterestCluster
    activity_rate: float
    high_poverty: bool = False
    pii_hash: str | None = None

    @property
    def age_bucket(self) -> AgeBucket:
        """Reporting bucket (platform-observable)."""
        return self.demographics.age_bucket

    @property
    def gender(self) -> Gender:
        """Gender (platform-observable)."""
        return self.demographics.gender

    @property
    def race(self) -> Race:
        """Ground-truth race — available to the auditor, NOT the platform."""
        return self.demographics.race

    def observed_cell(self) -> tuple[AgeBucket, Gender, InterestCluster, bool]:
        """The (age, gender, cluster, poverty) cell visible to the platform.

        Delivery models in :mod:`repro.platform` are functions of this
        cell; keeping it explicit makes "the platform cannot see race"
        checkable in tests.  ``high_poverty`` is observable because it
        derives from the user's ZIP code and public ACS-style statistics,
        not from anything self-reported.
        """
        return (self.age_bucket, self.gender, self.interest_cluster, self.high_poverty)
