"""Deterministic fault injection for the Marketing API transport.

Chaos middleware: wraps any transport callable (the in-process
``server.handle`` or an HTTP transport) and injects the failure modes a
real Marketing API harness sees over a multi-week run — throttling,
server errors, dropped connections, slow responses — from a seeded
stream, so a "10% faults" run is exactly reproducible.

The injector is how the test suite proves the resilience story end to
end: a full :class:`~repro.core.campaign_runner.PairedCampaignRunner`
day through ``FaultInjectingTransport(handle, error_rate=0.1, seed=...)``
must produce *bit-identical* results to the fault-free run, because

* rate-limit (429) and server-error (500) faults are answered from the
  middleware without touching the wrapped transport;
* connection resets are raised before the request is forwarded (by
  default), so the server never sees the aborted attempt;
* slow responses forward the request exactly once, after an injected
  (simulated-time) delay.

``reset_after_send=True`` flips connection resets to the nastier real
shape — the server processes the request but the response is lost —
which is what makes `/users` upload idempotency matter
(:meth:`MarketingApiServer._upload_users
<repro.api.server.MarketingApiServer>` dedupes replayed hashes).
"""

from __future__ import annotations

import enum
import logging
import random
from collections import Counter
from collections.abc import Callable, Sequence

from repro.api.protocol import ApiRequest, ApiResponse
from repro.errors import ApiError, RateLimitError, ValidationError

__all__ = ["FaultKind", "FaultInjectingTransport"]

logger = logging.getLogger(__name__)


class FaultKind(enum.Enum):
    """The failure modes the injector can produce."""

    RATE_LIMIT = "rate_limit"  #: a 429 envelope with a ``retry_after`` hint
    SERVER_ERROR = "server_error"  #: a 500 envelope (transient server fault)
    CONNECTION_RESET = "connection_reset"  #: a code-2 ``TransientError`` raise
    SLOW_RESPONSE = "slow_response"  #: extra latency, then a normal forward


class FaultInjectingTransport:
    """Seeded chaos wrapper around a transport callable.

    Parameters
    ----------
    inner:
        The wrapped transport (``ApiRequest -> ApiResponse``).
    error_rate:
        Probability a call draws a fault (i.i.d. per attempt; retried
        attempts roll again).
    seed:
        Seed for the private fault stream; same seed + same call order
        → same faults.
    kinds:
        Fault kinds to draw from (uniformly).
    sleep:
        Callable charged with slow-response latency (simulated time by
        default, like the client's backoff sleeper).
    retry_after:
        ``retry_after`` hint attached to injected 429s.
    slow_seconds:
        Injected latency for slow responses.
    reset_after_send:
        If True, connection resets forward the request first and then
        raise — the server has applied the request but the client never
        learns.  Default False (reset before send), which preserves
        run-for-run equivalence with a fault-free transport.
    """

    def __init__(
        self,
        inner: Callable[[ApiRequest], ApiResponse],
        *,
        error_rate: float = 0.1,
        seed: int = 0,
        kinds: Sequence[FaultKind] = tuple(FaultKind),
        sleep: Callable[[float], None] | None = None,
        retry_after: float = 0.5,
        slow_seconds: float = 2.0,
        reset_after_send: bool = False,
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ValidationError("error_rate must be in [0, 1)")
        if not kinds:
            raise ValidationError("at least one fault kind is required")
        self._inner = inner
        self._rate = error_rate
        self._kinds = tuple(kinds)
        self._rng = random.Random(seed)
        self._sleep = sleep or (lambda seconds: None)
        self._retry_after = retry_after
        self._slow_seconds = slow_seconds
        self._reset_after_send = reset_after_send
        #: Count of injected faults by kind (inspection/assertions).
        self.injected: Counter[FaultKind] = Counter()

    @property
    def total_injected(self) -> int:
        """Total faults injected so far."""
        return sum(self.injected.values())

    def __call__(self, request: ApiRequest) -> ApiResponse:
        if self._rng.random() >= self._rate:
            return self._inner(request)
        kind = self._kinds[self._rng.randrange(len(self._kinds))]
        self.injected[kind] += 1
        logger.debug("injecting fault kind=%s path=%s", kind.value, request.path)
        if kind is FaultKind.RATE_LIMIT:
            return ApiResponse(
                status=429,
                error=RateLimitError("injected rate limit").to_payload(),
                retry_after=self._retry_after,
            )
        if kind is FaultKind.SERVER_ERROR:
            return ApiResponse(
                status=500,
                error={
                    "message": "injected internal server error",
                    "type": "TransientError",
                    "code": 2,
                },
            )
        if kind is FaultKind.CONNECTION_RESET:
            if self._reset_after_send:
                self._inner(request)  # the server applies it; the reply is lost
            raise ApiError(
                "injected connection reset", code=2, api_type="TransientError"
            )
        # SLOW_RESPONSE: latency, then one normal forward.
        self._sleep(self._slow_seconds)
        return self._inner(request)
