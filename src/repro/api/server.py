"""The simulated Marketing API server.

Wraps one platform world (universe + audiences + accounts + delivery
machinery) behind Graph-API-shaped routes::

    POST /act_{id}/customaudiences          create a Custom Audience
    POST /{audience_id}/users               upload hashed PII
    GET  /{audience_id}                     audience metadata
    POST /act_{id}/campaigns                create a campaign
    POST /act_{id}/adsets                   create an ad set
    POST /act_{id}/ads                      create an ad (enters review)
    POST /{ad_id}/review                    run ad review
    POST /{ad_id}/appeal                    appeal a rejection
    GET  /act_{id}/ads                      list ads (cursor-paginated)
    POST /act_{id}/deliver                  run a 24-hour delivery day
    GET  /{ad_id}/insights                  totals or breakdowns

``POST .../deliver`` stands in for wall-clock time passing: the real study
launched ads and returned a day later; the simulator compresses that day
into one call.  Everything the audit measures afterwards flows through
``GET .../insights`` exactly as it would through the real reporting API.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.api.metrics import endpoint_key
from repro.api.pagination import paginate
from repro.api.protocol import ApiRequest, ApiResponse, HttpMethod
from repro.api.ratelimit import TokenBucket
from repro.api.routing import RouteTrie
from repro.errors import (
    ApiError,
    AudienceError,
    AuthError,
    NotFoundError,
    RateLimitError,
    ReproError,
)
from repro.geo.mobility import MobilityModel
from repro.images.composite import compose_job_ad
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.images.features import ImageFeatures
from repro.platform.audience import AudienceStore
from repro.platform.campaign import (
    Ad,
    AdAccount,
    AdCreative,
    Objective,
    SpecialAdCategory,
)
from repro.platform.competition import CompetitionModel
from repro.platform.delivery import DeliveryEngine, DeliveryResult
from repro.platform.ear import EarModel
from repro.platform.engagement import EngagementModel
from repro.platform.insights import AdInsights
from repro.platform.review import AdReviewSystem
from repro.platform.targeting import TargetingSpec
from repro.population.universe import UserUniverse
from repro.types import Gender, State

__all__ = ["MarketingApiServer"]


class MarketingApiServer:
    """Routes API requests onto one platform world.

    Parameters
    ----------
    universe:
        The platform user universe.
    ear, engagement, competition, mobility:
        Delivery machinery shared by all delivery days.
    rng:
        Randomness for delivery and review.
    access_tokens:
        Valid bearer tokens.
    rate_limit:
        Optional token bucket; ``None`` disables throttling.
    clock:
        Seconds clock used by the rate limiter.
    delivery_mode:
        Default :class:`~repro.platform.delivery.DeliveryEngine` mode for
        delivery requests ("vectorized" or "reference"); a request may
        override it with a ``mode`` parameter.
    delivery_workers:
        Default chunk-scoring thread count for vectorized delivery; a
        request may override it with a ``workers`` parameter.
    """

    def __init__(
        self,
        universe: UserUniverse,
        *,
        ear: EarModel,
        engagement: EngagementModel,
        competition: CompetitionModel,
        mobility: MobilityModel,
        rng: np.random.Generator,
        access_tokens: set[str],
        rate_limit: TokenBucket | None = None,
        clock: Callable[[], float] | None = None,
        advertiser_bid: float = 0.30,
        value_noise_sigma: float = 0.5,
        delivery_mode: str = "vectorized",
        delivery_workers: int = 1,
    ) -> None:
        self._universe = universe
        self._audiences = AudienceStore(universe)
        self._accounts: dict[str, AdAccount] = {}
        self._review = AdReviewSystem(rng)
        self._ear = ear
        self._engagement = engagement
        self._competition = competition
        self._mobility = mobility
        self._rng = rng
        self._tokens = set(access_tokens)
        self._bucket = rate_limit
        self._advertiser_bid = advertiser_bid
        self._value_noise_sigma = value_noise_sigma
        self._delivery_mode = delivery_mode
        self._delivery_workers = delivery_workers
        self._last_delivery: dict[str, DeliveryResult] = {}
        self._insights_by_ad: dict[str, AdInsights] = {}
        # staged uploads: audience id -> (name, accumulated hashes); an
        # audience is matched ("materialized") lazily on first targeting use.
        self._staged_uploads: dict[str, tuple[str, list[str]]] = {}
        # per-audience dedup index: a transport fault can make a client
        # replay a /users batch the server already applied, so membership
        # and num_received must count each hash at most once.
        self._staged_seen: dict[str, set[str]] = {}
        self._materialized: dict[str, str] = {}
        # One world, one writer: every routed request holds this lock, so
        # handler threads (ThreadingHTTPServer) cannot interleave inside
        # the mutable world state above.  Without it, a replayed /users
        # batch racing its original can read _staged_seen before the
        # first writer updates it and double-count num_received despite
        # the dedupe index (tests/api/test_server_concurrency.py).  The
        # asyncio gateway is single-writer by construction, so its calls
        # never contend here.
        self._state_lock = threading.RLock()
        self._routes = self._compile_routes()

    # -- world management (not part of the HTTP surface) ------------------

    def register_account(self, account: AdAccount) -> None:
        """Provision an ad account (out-of-band, like business onboarding)."""
        self._accounts[account.account_id] = account

    @property
    def audience_store(self) -> AudienceStore:
        """The world's audience store (test/inspection hook)."""
        return self._audiences

    # -- request entry point ----------------------------------------------

    def handle(self, request: ApiRequest) -> ApiResponse:
        """Process one request; never raises, always returns an envelope.

        Every request is wrapped in an ``api.request`` span (endpoint
        template + final status) and counted into the process-local
        registry as ``api_server_requests{endpoint, status}`` — the
        server-side mirror of the client's per-endpoint metrics.
        """
        key = endpoint_key(request.method, request.path)
        with get_tracer().span("api.request", {"endpoint": key}) as span:
            response = self._handle_inner(request)
            span.set("status", response.status)
        get_registry().inc(
            "api_server_requests", 1, endpoint=key, status=str(response.status)
        )
        return response

    def _handle_inner(self, request: ApiRequest) -> ApiResponse:
        try:
            if request.access_token not in self._tokens:
                raise AuthError()
            if self._bucket is not None and not self._bucket.try_acquire():
                # Tell the client when a token could next be granted so
                # its retry backoff can honor the hint instead of
                # guessing (RetryPolicy treats it as a lower bound).
                return ApiResponse.failure(
                    RateLimitError(),
                    status=429,
                    retry_after=self._bucket.seconds_until_available(),
                )
            with self._state_lock:
                return self._route(request)
        except RateLimitError as exc:
            return ApiResponse.failure(exc, status=429)
        except AuthError as exc:
            return ApiResponse.failure(exc, status=401)
        except NotFoundError as exc:
            return ApiResponse.failure(exc, status=404)
        except ApiError as exc:
            return ApiResponse.failure(exc, status=400)
        except ReproError as exc:
            return ApiResponse.failure(ApiError(str(exc)), status=400)

    def _compile_routes(self) -> RouteTrie:
        """The resource route table, compiled once at construction.

        The old ``_route`` rebuilt a dict of route tuples and re-derived
        the path shape on **every** request; the trie resolves a request
        in one walk over its segments, with the ``act_`` account
        converter bound at compile time.  Matching prefers the account
        branch and backtracks, so ``POST /act_1/users`` still reaches
        the upload handler with ``act_1`` as a plain object id.
        """
        trie = RouteTrie()
        with_account = self._with_account
        for segment, handler in (
            ("customaudiences", self._create_audience),
            ("lookalike", self._create_lookalike),
            ("campaigns", self._create_campaign),
            ("adsets", self._create_adset),
            ("ads", self._create_ad),
            ("deliver", self._deliver),
        ):
            trie.add(
                "POST", f"/{{account_id:account}}/{segment}", with_account(handler)
            )
        trie.add("GET", "/{account_id:account}/ads", with_account(self._list_ads))
        trie.add(
            "POST",
            "/{object_id}/users",
            lambda params, object_id: self._upload_users(object_id, params),
        )
        trie.add(
            "GET",
            "/{object_id}/insights",
            lambda params, object_id: self._insights(object_id, params),
        )
        trie.add(
            "POST",
            "/{object_id}/review",
            lambda params, object_id: self._review_ad(object_id, params),
        )
        trie.add(
            "POST",
            "/{object_id}/appeal",
            lambda params, object_id: self._appeal_ad(object_id),
        )
        trie.add(
            "GET",
            "/{object_id}",
            lambda params, object_id: self._get_object(object_id),
        )
        return trie

    def _with_account(self, handler) -> Any:
        """Adapt an ``(account, params)`` handler to the trie signature."""

        def route(params: dict[str, Any], account_id: str) -> ApiResponse:
            return handler(self._account(f"act_{account_id}"), params)

        return route

    def _route(self, request: ApiRequest) -> ApiResponse:
        match = self._routes.match(request.method.value, request.path)
        if match is None:
            if not any(request.path.split("/")):
                raise NotFoundError("empty path")
            raise NotFoundError(f"no route {request.method.value} {request.path}")
        handler, captures = match
        return handler(request.params, **captures)

    # -- helpers ------------------------------------------------------------

    def _account(self, account_path: str) -> AdAccount:
        account = self._accounts.get(account_path.removeprefix("act_"))
        if account is None:
            raise NotFoundError(f"unknown ad account {account_path}")
        return account

    def _find_ad(self, ad_id: str) -> tuple[AdAccount, Ad]:
        for account in self._accounts.values():
            ad = account.ads.get(ad_id)
            if ad is not None:
                return account, ad
        raise NotFoundError(f"unknown ad {ad_id}")

    @staticmethod
    def _require(params: dict[str, Any], *names: str) -> list[Any]:
        missing = [name for name in names if name not in params]
        if missing:
            raise ApiError(f"missing required parameters: {missing}", code=100)
        return [params[name] for name in names]

    # -- audience endpoints ---------------------------------------------

    def _create_audience(self, account: AdAccount, params: dict[str, Any]) -> ApiResponse:
        (name,) = self._require(params, "name")
        # An audience is created empty and populated by /users uploads; we
        # stage it and materialise on first upload.
        audience_id = f"staged_{len(self._staged_uploads)}"
        self._staged_uploads[audience_id] = (name, [])
        return ApiResponse.success({"id": audience_id, "name": name})

    def _upload_users(self, audience_id: str, params: dict[str, Any]) -> ApiResponse:
        (payload,) = self._require(params, "payload")
        hashes = payload.get("data")
        if not isinstance(hashes, list) or not hashes:
            raise ApiError("payload.data must be a non-empty list of hashes", code=100)
        staged = self._staged_uploads.get(audience_id)
        if staged is None:
            raise NotFoundError(f"unknown audience {audience_id}")
        name, accumulated = staged
        seen = self._staged_seen.setdefault(audience_id, set(accumulated))
        # Dedupe with set ops instead of a per-hash membership loop:
        # dict.fromkeys drops within-batch repeats (keeping first-seen
        # order), one set difference drops cross-batch repeats.
        batch = dict.fromkeys(str(raw) for raw in hashes)
        stale = seen.intersection(batch)
        fresh = [value for value in batch if value not in stale] if stale else list(batch)
        seen.update(fresh)
        accumulated.extend(fresh)
        return ApiResponse.success(
            {
                "audience_id": audience_id,
                "num_received": len(fresh),
                "num_duplicates": len(hashes) - len(fresh),
                "num_invalid_entries": 0,
            }
        )

    def _create_lookalike(self, account: AdAccount, params: dict[str, Any]) -> ApiResponse:
        """Expand a source audience into a Lookalike Audience.

        The source is materialised (matched) first if needed; the result
        is a ready-to-target audience id.
        """
        from repro.platform.lookalike import build_lookalike

        (source_id,) = self._require(params, "source_audience_id")
        ratio = float(params.get("expansion_ratio", 0.1))
        matched_source = self._materialize_audience(source_id)
        source = self._audiences.get(matched_source)
        members = build_lookalike(
            self._universe, set(source.member_ids), expansion_ratio=ratio
        )
        audience = self._audiences.create_from_members(
            f"lookalike({source.name}, {ratio:.0%})", members
        )
        # Lookalikes are born materialised; register them under their own
        # id so targeting specs can reference them directly.
        self._staged_uploads[audience.audience_id] = (audience.name, ["platform"])
        self._materialized[audience.audience_id] = audience.audience_id
        return ApiResponse.success(
            {
                "id": audience.audience_id,
                "approximate_count": audience.matched_count,
                "source": source_id,
            }
        )

    def _materialize_audience(self, audience_id: str) -> str:
        """Turn a staged upload into a matched audience; idempotent."""
        if audience_id in self._materialized:
            return self._materialized[audience_id]
        staged = self._staged_uploads.get(audience_id)
        if staged is None:
            raise NotFoundError(f"unknown audience {audience_id}")
        name, hashes = staged
        if not hashes:
            raise AudienceError(f"audience {audience_id} has no uploaded users")
        audience = self._audiences.create_from_hashes(name, hashes)
        self._materialized[audience_id] = audience.audience_id
        return audience.audience_id

    def _get_object(self, object_id: str) -> ApiResponse:
        if object_id in self._staged_uploads:
            name, hashes = self._staged_uploads[object_id]
            matched = self._materialized.get(object_id)
            approximate = None
            if matched is not None:
                approximate = self._audiences.get(matched).matched_count
            return ApiResponse.success(
                {
                    "id": object_id,
                    "name": name,
                    "uploaded_count": len(set(hashes)),
                    "approximate_count": approximate,
                }
            )
        for account in self._accounts.values():
            if object_id in account.ads:
                ad = account.ads[object_id]
                return ApiResponse.success(
                    {
                        "id": ad.ad_id,
                        "name": ad.name,
                        "adset_id": ad.adset_id,
                        "review_status": ad.review_status,
                    }
                )
        raise NotFoundError(f"unknown object {object_id}")

    # -- creation endpoints -----------------------------------------------

    def _create_campaign(self, account: AdAccount, params: dict[str, Any]) -> ApiResponse:
        name, objective = self._require(params, "name", "objective")
        try:
            objective_enum = Objective[objective]
        except KeyError as exc:
            raise ApiError(f"unknown objective {objective!r}", code=100) from exc
        category = SpecialAdCategory.NONE
        categories = params.get("special_ad_categories") or []
        if categories:
            try:
                category = SpecialAdCategory[categories[0]]
            except KeyError as exc:
                raise ApiError(f"unknown special ad category {categories[0]!r}", code=100) from exc
        campaign = account.create_campaign(name, objective_enum, special_ad_category=category)
        return ApiResponse.success({"id": campaign.campaign_id})

    def _create_adset(self, account: AdAccount, params: dict[str, Any]) -> ApiResponse:
        name, campaign_id, budget, targeting = self._require(
            params, "name", "campaign_id", "daily_budget", "targeting"
        )
        campaign = account.campaigns.get(campaign_id)
        if campaign is None:
            raise NotFoundError(f"unknown campaign {campaign_id}")
        spec = self._parse_targeting(targeting)
        adset = account.create_adset(campaign, name, int(budget), spec)
        return ApiResponse.success({"id": adset.adset_id})

    def _parse_targeting(self, raw: dict[str, Any]) -> TargetingSpec:
        audience_ids = tuple(
            self._materialize_audience(aid) for aid in raw.get("custom_audience_ids", ())
        )
        genders = tuple(Gender(g) for g in raw.get("genders", ()))
        states = tuple(State(s) for s in raw.get("states", ()))
        return TargetingSpec(
            custom_audience_ids=audience_ids,
            age_min=int(raw.get("age_min", 18)),
            age_max=(int(raw["age_max"]) if raw.get("age_max") is not None else None),
            genders=genders,
            states=states,
        )

    def _create_ad(self, account: AdAccount, params: dict[str, Any]) -> ApiResponse:
        name, adset_id, creative_raw = self._require(params, "name", "adset_id", "creative")
        adset = account.adsets.get(adset_id)
        if adset is None:
            raise NotFoundError(f"unknown ad set {adset_id}")
        creative = self._parse_creative(creative_raw)
        ad = account.create_ad(adset, name, creative)
        return ApiResponse.success({"id": ad.ad_id, "review_status": ad.review_status})

    @staticmethod
    def _parse_creative(raw: dict[str, Any]) -> AdCreative:
        image_raw = raw.get("image")
        if not isinstance(image_raw, dict):
            raise ApiError("creative.image must be a channel dict", code=100)
        try:
            features = ImageFeatures(**image_raw)
        except TypeError as exc:
            raise ApiError(f"bad image channels: {exc}", code=100) from exc
        image: ImageFeatures | Any = features
        job = raw.get("job_category")
        if job is not None:
            image = compose_job_ad(
                job, features, face_salience=float(raw.get("face_salience", 0.55))
            )
        return AdCreative(
            headline=raw.get("headline", ""),
            body=raw.get("body", ""),
            destination_url=raw.get("destination_url", ""),
            image=image,
        )

    # -- review endpoints ---------------------------------------------------

    def _review_ad(self, ad_id: str, params: dict[str, Any]) -> ApiResponse:
        account, ad = self._find_ad(ad_id)
        outcome = self._review.review(
            account, ad, resubmission=bool(params.get("resubmission", False))
        )
        return ApiResponse.success(
            {"id": ad.ad_id, "review_status": ad.review_status, "reason": outcome.reason}
        )

    def _appeal_ad(self, ad_id: str) -> ApiResponse:
        _, ad = self._find_ad(ad_id)
        outcome = self._review.appeal(ad)
        return ApiResponse.success(
            {"id": ad.ad_id, "review_status": ad.review_status, "reason": outcome.reason}
        )

    # -- listing ------------------------------------------------------------

    def _list_ads(self, account: AdAccount, params: dict[str, Any]) -> ApiResponse:
        rows = [
            {"id": ad.ad_id, "name": ad.name, "review_status": ad.review_status}
            for ad in account.ads.values()
        ]
        page, paging = paginate(
            f"ads:{account.account_id}",
            rows,
            after=params.get("after"),
            limit=int(params.get("limit", 25)),
        )
        return ApiResponse.success(page, paging=paging)

    # -- delivery -------------------------------------------------------------

    def _deliver(self, account: AdAccount, params: dict[str, Any]) -> ApiResponse:
        (ad_ids,) = self._require(params, "ad_ids")
        ads = []
        for ad_id in ad_ids:
            ad = account.ads.get(ad_id)
            if ad is None:
                raise NotFoundError(f"unknown ad {ad_id}")
            ads.append(ad)
        engine = DeliveryEngine(
            self._universe,
            self._audiences,
            account,
            ear=self._ear,
            engagement=self._engagement,
            competition=self._competition,
            mobility=self._mobility,
            rng=self._rng,
            advertiser_bid=self._advertiser_bid,
            hours=int(params.get("hours", 24)),
            value_noise_sigma=self._value_noise_sigma,
            mode=str(params.get("mode", self._delivery_mode)),
            workers=int(params.get("workers", self._delivery_workers)),
        )
        result = engine.run(ads)
        self._last_delivery[account.account_id] = result
        for ad in ads:
            self._insights_by_ad[ad.ad_id] = result.for_ad(ad.ad_id)
        return ApiResponse.success(
            {
                "total_slots": result.total_slots,
                "market_wins": result.market_wins,
                "delivered_ads": len(ads),
                "total_spend": round(result.total_spend, 4),
            }
        )

    # -- insights --------------------------------------------------------------

    def _insights(self, ad_id: str, params: dict[str, Any]) -> ApiResponse:
        insights = self._insights_by_ad.get(ad_id)
        if insights is None:
            self._find_ad(ad_id)  # 404 if the ad does not exist at all
            raise ApiError(f"ad {ad_id} has not delivered yet", code=100)
        breakdowns = params.get("breakdowns", "")
        if not breakdowns:
            return ApiResponse.success(
                {
                    "impressions": insights.impressions,
                    "reach": insights.reach,
                    "clicks": insights.clicks,
                    "spend": round(insights.spend, 4),
                }
            )
        keys = set(str(breakdowns).split(","))
        if keys == {"age", "gender"}:
            rows = [
                {"age": bucket.value, "gender": gender.value, "impressions": count}
                for (bucket, gender), count in sorted(
                    insights.by_age_gender.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
                )
            ]
        elif keys == {"region"}:
            rows = [
                {"region": state.value, "impressions": count}
                for state, count in sorted(insights.by_state.items(), key=lambda kv: kv[0].value)
            ]
        elif keys == {"dma"}:
            rows = [
                {"dma": dma, "impressions": count}
                for dma, count in sorted(insights.by_dma.items())
            ]
        elif keys == {"hourly"}:
            rows = [
                {"hour": hour, "impressions": count}
                for hour, count in sorted(insights.by_hour.items())
            ]
        else:
            raise ApiError(f"unsupported breakdowns {breakdowns!r}", code=100)
        page, paging = paginate(
            f"insights:{ad_id}:{breakdowns}",
            rows,
            after=params.get("after"),
            limit=int(params.get("limit", 25)),
        )
        return ApiResponse.success(page, paging=paging)
