"""Request/response envelope of the simulated Graph API.

Requests carry a method (GET/POST), a path like ``/act_123/campaigns``,
query/body parameters, and an access token.  Responses mirror the Graph
API envelope: a JSON-compatible ``data`` payload on success, or an
``error`` object with ``message`` / ``type`` / ``code`` on failure.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ApiError, ValidationError

__all__ = ["HttpMethod", "ApiRequest", "ApiResponse"]


class HttpMethod(enum.Enum):
    """Supported HTTP verbs."""

    GET = "GET"
    POST = "POST"
    DELETE = "DELETE"


@dataclass(frozen=True, slots=True)
class ApiRequest:
    """One API request."""

    method: HttpMethod
    path: str
    params: dict[str, Any] = field(default_factory=dict)
    access_token: str | None = None

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ValidationError(f"path must start with '/': {self.path!r}")

    def to_json(self) -> str:
        """Serialise for the wire (used by the HTTP transport)."""
        return json.dumps(
            {
                "method": self.method.value,
                "path": self.path,
                "params": self.params,
                "access_token": self.access_token,
            }
        )

    @staticmethod
    def from_json(payload: str) -> "ApiRequest":
        """Parse a serialised request."""
        try:
            raw = json.loads(payload)
            return ApiRequest(
                method=HttpMethod(raw["method"]),
                path=raw["path"],
                params=raw.get("params", {}),
                access_token=raw.get("access_token"),
            )
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            raise ApiError(f"malformed request: {exc}", code=100) from exc


@dataclass(frozen=True, slots=True)
class ApiResponse:
    """One API response.

    ``retry_after`` is the throttling hint attached to 429 responses:
    how many (simulated) seconds until the server's token bucket could
    next grant a request.  Retry backoff honors it as a lower bound.
    """

    status: int
    data: Any = None
    error: dict[str, Any] | None = None
    paging: dict[str, Any] | None = None
    retry_after: float | None = None

    @property
    def ok(self) -> bool:
        """True for 2xx responses."""
        return 200 <= self.status < 300

    def raise_for_status(self) -> None:
        """Raise the envelope error as an :class:`ApiError`."""
        if self.ok:
            return
        error = self.error or {}
        raise ApiError(
            error.get("message", f"HTTP {self.status}"),
            code=int(error.get("code", 1)),
            api_type=error.get("type", "OAuthException"),
        )

    def to_json(self) -> str:
        """Serialise for the wire."""
        body: dict[str, Any] = {}
        if self.ok:
            body["data"] = self.data
            if self.paging is not None:
                body["paging"] = self.paging
        else:
            body["error"] = self.error
            if self.retry_after is not None:
                body["retry_after"] = self.retry_after
        return json.dumps({"status": self.status, "body": body})

    @staticmethod
    def from_json(payload: str) -> "ApiResponse":
        """Parse a serialised response."""
        try:
            raw = json.loads(payload)
            body = raw.get("body", {})
            retry_after = body.get("retry_after")
            return ApiResponse(
                status=int(raw["status"]),
                data=body.get("data"),
                error=body.get("error"),
                paging=body.get("paging"),
                retry_after=(None if retry_after is None else float(retry_after)),
            )
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            raise ApiError(f"malformed response: {exc}", code=100) from exc

    @staticmethod
    def success(data: Any, paging: dict[str, Any] | None = None) -> "ApiResponse":
        """200 response."""
        return ApiResponse(status=200, data=data, paging=paging)

    @staticmethod
    def failure(
        exc: ApiError, status: int = 400, *, retry_after: float | None = None
    ) -> "ApiResponse":
        """Error response from an :class:`ApiError`."""
        return ApiResponse(status=status, error=exc.to_payload(), retry_after=retry_after)
