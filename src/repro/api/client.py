"""Typed Marketing API client.

The audit methodology (:mod:`repro.core`) drives the platform exclusively
through this client, the way the paper's harness drove Facebook through
the Marketing API.  The client:

* speaks the request/response envelope of :mod:`repro.api.protocol`;
* routes every request — single calls *and* paged reads — through one
  bounded :class:`~repro.api.retry.RetryPolicy` (429s, 5xx responses
  and transient transport faults are retried with deterministic
  jittered backoff, honoring server ``retry_after`` hints, then
  surfaced as errors rather than spinning forever);
* records per-endpoint request/retry/latency metrics on
  :attr:`MarketingApiClient.metrics`;
* follows pagination cursors transparently;
* chunks large Custom Audience uploads (the real endpoint caps batch
  sizes).
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable, Iterable
from typing import Any

from repro.api.metrics import ClientMetrics, endpoint_key
from repro.api.protocol import ApiRequest, ApiResponse, HttpMethod
from repro.api.retry import RetryPolicy, send_with_retry
from repro.errors import ApiError, ValidationError

__all__ = ["MarketingApiClient"]

logger = logging.getLogger(__name__)

#: The real customaudiences/users endpoint accepts up to 10k rows/batch.
UPLOAD_BATCH_SIZE = 10_000


def _no_sleep(seconds: float) -> None:
    """Default backoff sleeper: simulated time, no real waiting."""


class MarketingApiClient:
    """Client over a transport callable.

    Parameters
    ----------
    transport:
        Callable mapping :class:`ApiRequest` to :class:`ApiResponse` — the
        in-process server's ``handle`` or an HTTP transport.
    access_token:
        Bearer token attached to every request.
    sleep:
        Callable used for backoff waits.
    max_retries:
        Back-compat shorthand for ``retry``: rate-limit retries before
        giving up (``max_retries=5`` ≡ ``RetryPolicy(max_attempts=6)``).
    retry:
        Full retry policy (attempt cap, backoff, jitter, predicates).
        Mutually exclusive with ``max_retries``.
    clock:
        Seconds clock used for per-attempt latency metrics.
    metrics:
        Metrics sink; a fresh :class:`ClientMetrics` by default.
    """

    def __init__(
        self,
        transport: Callable[[ApiRequest], ApiResponse],
        access_token: str,
        *,
        sleep: Callable[[float], None] = _no_sleep,
        max_retries: int | None = None,
        retry: RetryPolicy | None = None,
        clock: Callable[[], float] = time.perf_counter,
        metrics: ClientMetrics | None = None,
    ) -> None:
        if retry is not None and max_retries is not None:
            raise ValidationError("pass either retry or max_retries, not both")
        if retry is None:
            attempts = 5 if max_retries is None else max_retries
            if attempts < 0:
                raise ValidationError("max_retries must be non-negative")
            retry = RetryPolicy(max_attempts=attempts + 1)
        self._transport = transport
        self._token = access_token
        self._sleep = sleep
        self._retry = retry
        self._clock = clock
        self.metrics = metrics if metrics is not None else ClientMetrics()
        self.requests_sent = 0

    @property
    def retry_policy(self) -> RetryPolicy:
        """The policy every request routes through."""
        return self._retry

    # -- low-level ---------------------------------------------------------

    def _request(self, request: ApiRequest) -> ApiResponse:
        """Send one request through the retry policy; raise on failure."""
        key = endpoint_key(request.method, request.path)

        def send() -> ApiResponse:
            self.requests_sent += 1
            started = self._clock()
            try:
                return self._transport(request)
            finally:
                self.metrics.record_attempt(key, self._clock() - started)

        def on_retry(attempt: int, delay: float, reason: str) -> None:
            self.metrics.record_retry(key, delay)

        try:
            response = send_with_retry(
                self._retry, send, sleep=self._sleep, on_retry=on_retry
            )
        except ApiError as exc:
            self.metrics.record_error(key)
            if self._retry.retryable_exception(exc):
                self.metrics.record_giveup(key)
                logger.warning(
                    "giving up on %s after %d attempts: %s",
                    key,
                    self._retry.max_attempts,
                    exc,
                )
            raise
        if not response.ok:
            self.metrics.record_error(key)
            if self._retry.retryable_status(response.status):
                # The loop exhausted the policy on a retryable status.
                self.metrics.record_giveup(key)
                logger.warning(
                    "giving up on %s after %d attempts (HTTP %d)",
                    key,
                    self._retry.max_attempts,
                    response.status,
                )
            if response.status == 429:
                raise ApiError("rate limited after retries", code=4)
            response.raise_for_status()
        return response

    def call(self, method: HttpMethod, path: str, params: dict[str, Any] | None = None) -> Any:
        """One request under the retry policy; returns the ``data`` payload."""
        request = ApiRequest(
            method=method, path=path, params=params or {}, access_token=self._token
        )
        return self._request(request).data

    def get_paged(self, path: str, params: dict[str, Any] | None = None) -> list[Any]:
        """GET a list endpoint, following ``after`` cursors to the end.

        Each page fetch is bounded by the retry policy like any other
        call — a persistently throttled page raises :class:`ApiError`
        (code 4) instead of spinning.
        """
        collected: list[Any] = []
        params = dict(params or {})
        while True:
            request = ApiRequest(
                method=HttpMethod.GET, path=path, params=params, access_token=self._token
            )
            response = self._request(request)
            collected.extend(response.data)
            cursors = (response.paging or {}).get("cursors", {})
            after = cursors.get("after")
            if not after:
                return collected
            params["after"] = after

    # -- audiences ----------------------------------------------------------

    def create_custom_audience(self, account_id: str, name: str) -> str:
        """Create an (empty) Custom Audience; returns its id."""
        data = self.call(
            HttpMethod.POST, f"/act_{account_id}/customaudiences", {"name": name}
        )
        return data["id"]

    def upload_audience_users(self, audience_id: str, pii_hashes: Iterable[str]) -> int:
        """Upload hashed PII in batches; returns the number received."""
        hashes = list(pii_hashes)
        if not hashes:
            raise ValidationError("refusing to upload an empty user list")
        received = 0
        for start in range(0, len(hashes), UPLOAD_BATCH_SIZE):
            batch = hashes[start : start + UPLOAD_BATCH_SIZE]
            data = self.call(
                HttpMethod.POST,
                f"/{audience_id}/users",
                {"payload": {"schema": ["PII_SHA256"], "data": batch}},
            )
            received += int(data["num_received"])
        return received

    def get_audience(self, audience_id: str) -> dict[str, Any]:
        """Audience metadata (uploaded count, approximate matched size)."""
        return self.call(HttpMethod.GET, f"/{audience_id}")

    def create_lookalike(
        self, account_id: str, source_audience_id: str, *, expansion_ratio: float = 0.1
    ) -> dict[str, Any]:
        """Expand a source audience into a Lookalike; returns id + size."""
        return self.call(
            HttpMethod.POST,
            f"/act_{account_id}/lookalike",
            {
                "source_audience_id": source_audience_id,
                "expansion_ratio": expansion_ratio,
            },
        )

    # -- creation -----------------------------------------------------------

    def create_campaign(
        self,
        account_id: str,
        name: str,
        objective: str,
        *,
        special_ad_categories: list[str] | None = None,
    ) -> str:
        """Create a campaign; returns its id."""
        data = self.call(
            HttpMethod.POST,
            f"/act_{account_id}/campaigns",
            {
                "name": name,
                "objective": objective,
                "special_ad_categories": special_ad_categories or [],
            },
        )
        return data["id"]

    def create_adset(
        self,
        account_id: str,
        name: str,
        campaign_id: str,
        daily_budget_cents: int,
        targeting: dict[str, Any],
    ) -> str:
        """Create an ad set; returns its id."""
        data = self.call(
            HttpMethod.POST,
            f"/act_{account_id}/adsets",
            {
                "name": name,
                "campaign_id": campaign_id,
                "daily_budget": daily_budget_cents,
                "targeting": targeting,
            },
        )
        return data["id"]

    def create_ad(
        self, account_id: str, name: str, adset_id: str, creative: dict[str, Any]
    ) -> str:
        """Create an ad; returns its id (review still pending)."""
        data = self.call(
            HttpMethod.POST,
            f"/act_{account_id}/ads",
            {"name": name, "adset_id": adset_id, "creative": creative},
        )
        return data["id"]

    # -- review ---------------------------------------------------------------

    def submit_for_review(self, ad_id: str, *, resubmission: bool = False) -> dict[str, Any]:
        """Run review for one ad; returns status and reason."""
        return self.call(
            HttpMethod.POST, f"/{ad_id}/review", {"resubmission": resubmission}
        )

    def appeal(self, ad_id: str) -> dict[str, Any]:
        """Appeal a rejection."""
        return self.call(HttpMethod.POST, f"/{ad_id}/appeal")

    # -- delivery & reporting --------------------------------------------------

    def deliver_day(
        self,
        account_id: str,
        ad_ids: list[str],
        *,
        hours: int = 24,
        mode: str | None = None,
    ) -> dict[str, Any]:
        """Run one delivery day for the listed ads.

        ``mode`` overrides the server's default delivery engine mode
        ("vectorized" or "reference") for this request only.
        """
        params: dict[str, Any] = {"ad_ids": ad_ids, "hours": hours}
        if mode is not None:
            params["mode"] = mode
        return self.call(HttpMethod.POST, f"/act_{account_id}/deliver", params)

    def get_insights(self, ad_id: str) -> dict[str, Any]:
        """Totals: impressions, reach, clicks, spend."""
        return self.call(HttpMethod.GET, f"/{ad_id}/insights")

    def get_insights_by_age_gender(self, ad_id: str) -> list[dict[str, Any]]:
        """Age × gender breakdown rows."""
        return self.get_paged(f"/{ad_id}/insights", {"breakdowns": "age,gender"})

    def get_insights_by_region(self, ad_id: str) -> list[dict[str, Any]]:
        """Region (state) breakdown rows."""
        return self.get_paged(f"/{ad_id}/insights", {"breakdowns": "region"})

    def list_ads(self, account_id: str) -> list[dict[str, Any]]:
        """All ads under the account."""
        return self.get_paged(f"/act_{account_id}/ads")
