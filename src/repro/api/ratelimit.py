"""Token-bucket rate limiting: in-process buckets and the cluster plane.

The real Marketing API throttles per app/account; the paper's harness
deliberately queried "from a single vantage point without parallelizing
queries" (§4.1).  The simulated server enforces the same discipline: a
token bucket refills at a steady rate and each request consumes one token;
an empty bucket yields the Graph API's code-4 error.

Two implementations share that contract:

* :class:`TokenBucket` — one process, lock-protected; the server-side
  throttle and the single-worker gateway.
* :class:`SharedRateLimiter` — token budgets in a fixed-layout
  ``multiprocessing.shared_memory`` block, so a ``GatewayCluster``'s
  ``SO_REUSEPORT`` workers enforce **one** budget per access token no
  matter which worker the kernel hands a connection to.  See the class
  docstring for the single-writer ledger semantics.

Time is injected (a callable returning seconds) so tests can drive the
clock deterministically.
"""

from __future__ import annotations

import json
import struct
import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.errors import ValidationError
from repro.obs.cluster import aligned_offset, tracker_reregister, tracker_unregister

__all__ = ["TokenBucket", "SharedRateLimiter", "RateLimitManifest"]


class TokenBucket:
    """Classic token bucket, safe under concurrent callers.

    ``_refill``/``try_acquire`` read and write the shared ``_tokens`` /
    ``_last`` pair; before the internal lock, two ``ThreadingHTTPServer``
    handler threads could interleave between the availability check and
    the decrement and admit more requests than ``capacity``
    (``tests/api/test_ratelimit_concurrency.py`` reproduces the
    over-admission against a lock-free bucket).  Every public entry point
    now holds one mutex for its whole read-modify-write, so the bucket is
    correct from handler threads *and* trivially so from the gateway's
    single-writer event loop.

    Parameters
    ----------
    capacity:
        Maximum burst size.
    refill_per_second:
        Sustained request rate.
    clock:
        Callable returning seconds.  Backwards steps (an NTP correction
        under a wall clock) are tolerated: refill clamps to the last
        observed time instead of failing.
    """

    def __init__(
        self,
        capacity: int,
        refill_per_second: float,
        clock: Callable[[], float],
    ) -> None:
        if capacity < 1:
            raise ValidationError("capacity must be at least 1")
        if refill_per_second <= 0:
            raise ValidationError("refill rate must be positive")
        self._capacity = float(capacity)
        self._rate = refill_per_second
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(capacity)
        self._last = clock()

    @property
    def available(self) -> float:
        """Tokens available right now (after refill)."""
        with self._lock:
            self._refill()
            return self._tokens

    def _refill(self) -> None:
        # Caller holds the lock.  Wall clocks step backwards under NTP
        # corrections; treating that as fatal would 500 the server
        # permanently.  Clamp instead: no refill is earned while the
        # clock is behind the high-water mark.
        now = max(self._clock(), self._last)
        self._tokens = min(self._capacity, self._tokens + (now - self._last) * self._rate)
        self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; returns success."""
        if tokens <= 0:
            raise ValidationError("tokens must be positive")
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def seconds_until_available(self, tokens: float = 1.0) -> float:
        """How long until ``tokens`` would be available.

        The wait is for the *requested* token count — a denied burst of
        ``n`` tokens must not be told to retry after the one-token wait,
        or its retry is denied again by construction.  Asking for more
        than ``capacity`` can never succeed, so it is a caller bug.
        """
        if tokens <= 0:
            raise ValidationError("tokens must be positive")
        if tokens > self._capacity:
            raise ValidationError(
                f"{tokens} tokens can never be granted by a "
                f"capacity-{self._capacity:g} bucket"
            )
        with self._lock:
            self._refill()
            deficit = tokens - self._tokens
            if deficit <= 0:
                return 0.0
            return deficit / self._rate


# ---------------------------------------------------------------------------
# Cluster-wide shared-memory rate-limit plane


_RL_MAGIC = b"RRLP"
_RL_VERSION = 1
# Block header: magic, version, n_tokens, n_workers, pad to 16, then
# capacity and rate as 8-byte-aligned doubles.
_RL_HEADER = struct.Struct("<4sHHH6xdd")
_RL_HEADER_BYTES = 64
# Per-token slot prefix: credit (tokens ever granted), last refill stamp.
_RL_CREDIT = struct.Struct("<dd")
_RL_DEBIT = struct.Struct("<d")


@dataclass(frozen=True, slots=True)
class RateLimitManifest:
    """Everything an attacher needs to map the rate-limit block.

    Token *order* is the slot layout: slot ``i`` belongs to
    ``tokens[i]``.  The set is fixed at cluster start — auth precedes
    throttling, so only known access tokens ever reach the plane and no
    in-block claim protocol is needed.
    """

    shm_name: str
    tokens: tuple[str, ...]
    n_workers: int
    capacity: float
    refill_per_second: float
    slot_bytes: int

    def to_json(self) -> str:
        return json.dumps(
            {
                "shm_name": self.shm_name,
                "tokens": list(self.tokens),
                "n_workers": self.n_workers,
                "capacity": self.capacity,
                "refill_per_second": self.refill_per_second,
                "slot_bytes": self.slot_bytes,
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "RateLimitManifest":
        raw = json.loads(payload)
        return cls(
            shm_name=raw["shm_name"],
            tokens=tuple(raw["tokens"]),
            n_workers=int(raw["n_workers"]),
            capacity=float(raw["capacity"]),
            refill_per_second=float(raw["refill_per_second"]),
            slot_bytes=int(raw["slot_bytes"]),
        )


class SharedRateLimiter:
    """Token buckets in shared memory: one budget across all workers.

    **Layout.**  A 64-byte header (magic/version/counts/capacity/rate)
    followed by one 64-byte-aligned slot per access token:
    ``credit: f64`` (tokens ever granted), ``last: f64`` (refill
    stamp, ``time.monotonic`` — system-wide on Linux, so stamps written
    by different workers are comparable), then ``n_workers`` per-worker
    ``debit: f64`` counters (tokens ever consumed).

    **Semantics.**  Instead of a mutable "tokens remaining" cell that
    every worker would contend on, the ledger is monotonic: ``credit``
    only grows (refill), each ``debits[w]`` only grows and is written
    *only* by worker ``w`` — the same single-writer-per-cell discipline
    as ``repro.obs.cluster``'s telemetry slots.  Availability is
    ``credit - sum(debits)``.  Refill recomputes the absolute value
    ``credit = min(credit + rate·Δt, sum(debits) + capacity)`` — any
    worker may write it, and because the recomputation is from absolute
    time (not an increment), a lost update can only *under*-credit
    briefly, never mint tokens.  Two workers racing the last token can
    both admit (the check and the debit are not one atomic step); the
    over-admission is bounded by the worker count, drives availability
    negative, and is repaid before the next admission — so budgets are
    exact under sequential cross-worker load and tight under races,
    which is the enforcement a cluster-wide 429 needs.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: RateLimitManifest,
        worker_index: int | None,
        clock: Callable[[], float],
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._manifest = manifest
        self._worker_index = worker_index
        self._clock = clock
        self._owner = owner
        self._index = {token: i for i, token in enumerate(manifest.tokens)}
        self._capacity = manifest.capacity
        self._rate = manifest.refill_per_second
        self._n_workers = manifest.n_workers

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        tokens: Iterable[str],
        *,
        capacity: float,
        refill_per_second: float,
        n_workers: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> "SharedRateLimiter":
        """Allocate and initialise the block (the cluster parent's side)."""
        token_tuple = tuple(dict.fromkeys(tokens))
        if not token_tuple:
            raise ValidationError("at least one access token is required")
        if capacity < 1:
            raise ValidationError("capacity must be at least 1")
        if refill_per_second <= 0:
            raise ValidationError("refill rate must be positive")
        if n_workers < 1:
            raise ValidationError("n_workers must be >= 1")
        slot_bytes = aligned_offset(_RL_CREDIT.size + n_workers * _RL_DEBIT.size)
        total = _RL_HEADER_BYTES + slot_bytes * len(token_tuple)
        shm = shared_memory.SharedMemory(create=True, size=total)
        shm.buf[:total] = b"\x00" * total
        _RL_HEADER.pack_into(
            shm.buf,
            0,
            _RL_MAGIC,
            _RL_VERSION,
            len(token_tuple),
            n_workers,
            float(capacity),
            float(refill_per_second),
        )
        now = clock()
        for slot in range(len(token_tuple)):
            _RL_CREDIT.pack_into(
                shm.buf, _RL_HEADER_BYTES + slot * slot_bytes, float(capacity), now
            )
        manifest = RateLimitManifest(
            shm_name=shm.name,
            tokens=token_tuple,
            n_workers=n_workers,
            capacity=float(capacity),
            refill_per_second=float(refill_per_second),
            slot_bytes=slot_bytes,
        )
        return cls(shm, manifest, None, clock, owner=True)

    @classmethod
    def attach(
        cls,
        manifest_json: str,
        worker_index: int | None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> "SharedRateLimiter":
        """Map an existing block; ``worker_index`` selects the debit cell.

        ``worker_index=None`` attaches read-only (observers may query
        availability but not admit requests).
        """
        manifest = RateLimitManifest.from_json(manifest_json)
        if worker_index is not None and not 0 <= worker_index < manifest.n_workers:
            raise ValidationError(
                f"worker_index {worker_index} out of range for "
                f"{manifest.n_workers} workers"
            )
        shm = shared_memory.SharedMemory(name=manifest.shm_name)
        # The parent owns the block's lifetime; without this, any
        # attaching worker's exit would tear the plane down under the
        # survivors (same dance as the telemetry block).
        tracker_unregister(shm)
        magic, version, n_tokens, n_workers, _cap, _rate = _RL_HEADER.unpack_from(
            shm.buf, 0
        )
        if magic != _RL_MAGIC or version != _RL_VERSION:
            shm.close()
            raise ValidationError("not a rate-limit block (bad magic/version)")
        if n_tokens != len(manifest.tokens) or n_workers != manifest.n_workers:
            shm.close()
            raise ValidationError("rate-limit manifest does not match the block")
        return cls(shm, manifest, worker_index, clock, owner=False)

    @property
    def manifest(self) -> RateLimitManifest:
        return self._manifest

    def covers(self, token: str) -> bool:
        """Whether ``token`` has a slot in the plane."""
        return token in self._index

    # -- the bucket contract -------------------------------------------------

    def _slot_offset(self, token: str) -> int:
        try:
            slot = self._index[token]
        except KeyError:
            raise ValidationError("access token has no slot in the rate plane") from None
        return _RL_HEADER_BYTES + slot * self._manifest.slot_bytes

    def _refreshed(self, base: int) -> tuple[float, float]:
        """Refill the slot at ``base``; returns (credit, debit_total)."""
        buf = self._shm.buf
        credit, last = _RL_CREDIT.unpack_from(buf, base)
        debit_total = 0.0
        offset = base + _RL_CREDIT.size
        for _ in range(self._n_workers):
            debit_total += _RL_DEBIT.unpack_from(buf, offset)[0]
            offset += _RL_DEBIT.size
        now = self._clock()
        if now > last:
            new_credit = min(
                credit + (now - last) * self._rate, debit_total + self._capacity
            )
            if new_credit > credit:
                credit = new_credit
            _RL_CREDIT.pack_into(buf, base, credit, now)
        return credit, debit_total

    def try_acquire(self, token: str, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` from the cluster-wide budget if available."""
        if tokens <= 0:
            raise ValidationError("tokens must be positive")
        if self._worker_index is None:
            raise ValidationError("read-only rate-plane view cannot admit requests")
        base = self._slot_offset(token)
        credit, debit_total = self._refreshed(base)
        if credit - debit_total < tokens:
            return False
        cell = base + _RL_CREDIT.size + self._worker_index * _RL_DEBIT.size
        buf = self._shm.buf
        _RL_DEBIT.pack_into(buf, cell, _RL_DEBIT.unpack_from(buf, cell)[0] + tokens)
        return True

    def available(self, token: str) -> float:
        """Tokens available cluster-wide right now (after refill)."""
        credit, debit_total = self._refreshed(self._slot_offset(token))
        return credit - debit_total

    def seconds_until_available(self, token: str, tokens: float = 1.0) -> float:
        """How long until ``tokens`` would be available (cluster-wide)."""
        if tokens <= 0:
            raise ValidationError("tokens must be positive")
        if tokens > self._capacity:
            raise ValidationError(
                f"{tokens} tokens can never be granted by a "
                f"capacity-{self._capacity:g} plane"
            )
        credit, debit_total = self._refreshed(self._slot_offset(token))
        deficit = tokens - (credit - debit_total)
        if deficit <= 0:
            return 0.0
        return deficit / self._rate

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (the block itself survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the block (owner only; after every worker detached)."""
        if not self._owner:
            raise ValidationError("only the creating process may unlink the plane")
        tracker_reregister(self._shm)
        self._shm.close()
        self._shm.unlink()
