"""Token-bucket rate limiting.

The real Marketing API throttles per app/account; the paper's harness
deliberately queried "from a single vantage point without parallelizing
queries" (§4.1).  The simulated server enforces the same discipline: a
token bucket refills at a steady rate and each request consumes one token;
an empty bucket yields the Graph API's code-4 error.

Time is injected (a callable returning seconds) so tests can drive the
clock deterministically.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from repro.errors import ValidationError

__all__ = ["TokenBucket"]


class TokenBucket:
    """Classic token bucket, safe under concurrent callers.

    ``_refill``/``try_acquire`` read and write the shared ``_tokens`` /
    ``_last`` pair; before the internal lock, two ``ThreadingHTTPServer``
    handler threads could interleave between the availability check and
    the decrement and admit more requests than ``capacity``
    (``tests/api/test_ratelimit_concurrency.py`` reproduces the
    over-admission against a lock-free bucket).  Every public entry point
    now holds one mutex for its whole read-modify-write, so the bucket is
    correct from handler threads *and* trivially so from the gateway's
    single-writer event loop.

    Parameters
    ----------
    capacity:
        Maximum burst size.
    refill_per_second:
        Sustained request rate.
    clock:
        Callable returning seconds.  Backwards steps (an NTP correction
        under a wall clock) are tolerated: refill clamps to the last
        observed time instead of failing.
    """

    def __init__(
        self,
        capacity: int,
        refill_per_second: float,
        clock: Callable[[], float],
    ) -> None:
        if capacity < 1:
            raise ValidationError("capacity must be at least 1")
        if refill_per_second <= 0:
            raise ValidationError("refill rate must be positive")
        self._capacity = float(capacity)
        self._rate = refill_per_second
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(capacity)
        self._last = clock()

    @property
    def available(self) -> float:
        """Tokens available right now (after refill)."""
        with self._lock:
            self._refill()
            return self._tokens

    def _refill(self) -> None:
        # Caller holds the lock.  Wall clocks step backwards under NTP
        # corrections; treating that as fatal would 500 the server
        # permanently.  Clamp instead: no refill is earned while the
        # clock is behind the high-water mark.
        now = max(self._clock(), self._last)
        self._tokens = min(self._capacity, self._tokens + (now - self._last) * self._rate)
        self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; returns success."""
        if tokens <= 0:
            raise ValidationError("tokens must be positive")
        with self._lock:
            self._refill()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def seconds_until_available(self, tokens: float = 1.0) -> float:
        """How long until ``tokens`` would be available."""
        with self._lock:
            self._refill()
            deficit = tokens - self._tokens
            if deficit <= 0:
                return 0.0
            return deficit / self._rate
