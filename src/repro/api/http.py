"""Optional TCP/HTTP transport for the Marketing API.

The in-process transport (calling ``MarketingApiServer.handle`` directly)
is what experiments use; this module adds a real socket boundary for
integration testing and for driving the simulator from other processes:

* :class:`HttpApiServer` — a threaded HTTP server exposing the envelope
  protocol at ``POST /graph`` (one JSON-serialised :class:`ApiRequest`
  per call);
* :func:`http_transport` — a client-side transport callable compatible
  with :class:`repro.api.client.MarketingApiClient`.

The wire format is the envelope's own JSON serialisation; HTTP status is
carried both at the HTTP layer and inside the envelope so a plain curl
call shows sensible codes.

This threaded server stays the *minimal* integration-test transport;
the production serving tier is :mod:`repro.api.gateway` (asyncio,
route-per-resource REST, backpressure, multi-process workers).  Both
share the now thread-safe :class:`~repro.api.ratelimit.TokenBucket`.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from collections.abc import Callable

from repro.api.protocol import ApiRequest, ApiResponse
from repro.errors import ApiError

__all__ = ["HttpApiServer", "http_transport", "MAX_BODY_BYTES"]

logger = logging.getLogger(__name__)

#: Upper bound on an accepted request body.  The largest legitimate
#: payload is a 10k-hash ``/users`` batch (~700 KB of JSON); 8 MiB
#: leaves generous headroom while stopping a hostile Content-Length
#: from making ``rfile.read`` balloon the handler's memory.
MAX_BODY_BYTES = 8 * 1024 * 1024


def parse_content_length(raw: str | None, *, limit: int = MAX_BODY_BYTES) -> int:
    """Validate a ``Content-Length`` header value; raise code-100 otherwise.

    A negative value handed to ``rfile.read(length)`` means "read to
    EOF", which on a keep-alive socket never arrives — the handler
    thread hangs until the client gives up.  Non-numeric values raise
    uncaught in the handler, and an absurd length invites a memory
    bomb.  All three are client errors, so they map to a 400 envelope.
    """
    if raw is None or not raw.strip():
        raise ApiError("missing Content-Length header", code=100)
    try:
        length = int(raw)
    except ValueError as exc:
        raise ApiError(f"non-numeric Content-Length {raw!r}", code=100) from exc
    if length < 0:
        raise ApiError(f"negative Content-Length {length}", code=100)
    if length > limit:
        raise ApiError(
            f"Content-Length {length} exceeds the {limit}-byte body limit", code=100
        )
    return length


class _Handler(BaseHTTPRequestHandler):
    """Maps POST /graph onto the wrapped handler."""

    # HTTP/1.1 keeps the connection alive between requests, letting the
    # keep-alive client transport below reuse one TCP connection for a
    # whole campaign (responses always carry Content-Length).
    protocol_version = "HTTP/1.1"

    # set by the server factory
    api_handler: Callable[[ApiRequest], ApiResponse]

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path != "/graph":
            self.send_error(404, "only POST /graph is served")
            return
        try:
            length = parse_content_length(self.headers.get("Content-Length"))
            body = self.rfile.read(length).decode("utf-8")
            request = ApiRequest.from_json(body)
        except (ApiError, ValueError) as exc:
            self._respond(ApiResponse.failure(ApiError(str(exc), code=100), status=400))
            return
        self._respond(self.api_handler(request))

    def _respond(self, response: ApiResponse) -> None:
        payload = response.to_json().encode("utf-8")
        request_id = (self.headers.get("X-Request-Id") or "").strip()
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            if request_id:
                # Echo the client's correlation id (same contract as the
                # asyncio gateway) so transport-level metrics and server
                # spans join on one key.
                self.send_header("X-Request-Id", request_id[:128])
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError) as exc:
            # The client hung up mid-response (a timeout, a killed
            # process, an injected fault).  Its request was already
            # applied server-side; dropping the reply quietly mirrors
            # the real platform, and the client's retry/idempotency
            # machinery is what recovers.  A stack trace here would be
            # pure noise on every chaos run.
            logger.debug("client disconnected during response: %s", exc)
            self.close_connection = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route per-request logs to :mod:`logging` instead of stderr."""
        logger.debug("%s - %s", self.address_string(), format % args)


class _QuietThreadingHTTPServer(ThreadingHTTPServer):
    """Threaded server that doesn't stack-trace on client disconnects.

    ``_respond`` already swallows resets during the *write*; a client
    can just as well vanish while the handler thread is *reading* the
    next keep-alive request, which raises out of ``finish_request`` and
    lands in ``handle_error`` — whose default prints a traceback to
    stderr on every chaos run.  Same policy as ``_respond``: log at
    debug, move on.
    """

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            logger.debug("client %s disconnected: %s", client_address, exc)
            return
        super().handle_error(request, client_address)


class HttpApiServer:
    """Threaded HTTP wrapper around an API handler.

    Usage::

        with HttpApiServer(server.handle) as http_server:
            client = MarketingApiClient(
                http_transport("127.0.0.1", http_server.port), token
            )
    """

    def __init__(
        self,
        handler: Callable[[ApiRequest], ApiResponse],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        handler_cls = type("BoundHandler", (_Handler,), {"api_handler": staticmethod(handler)})
        self._server = _QuietThreadingHTTPServer((host, port), handler_cls)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    def start(self) -> None:
        """Serve requests on a daemon thread."""
        if self._thread is not None:
            raise ApiError("server already started")
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join the thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HttpApiServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _WireResponse:
    """A parsed response head: status plus a lowercase header dict.

    Mirrors the slice of ``http.client.HTTPResponse`` the transport
    hooks use (``.status``, ``.getheader``) without the stdlib's
    ``email``-module header parsing behind it.
    """

    __slots__ = ("status", "headers")

    def __init__(self, status: int, headers: dict[str, str]) -> None:
        self.status = status
        self.headers = headers

    def getheader(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)


class _KeepAliveTransport:
    """Client transport reusing one raw socket across requests.

    The original transport opened a fresh TCP connection per call —
    three-way handshake and slow-start tax on every one of the thousands
    of requests a campaign makes, and a steady churn of TIME_WAIT
    sockets under load.  This one keeps the connection alive and
    reconnects on failure:

    * a request that fails mid-stream (connection dropped, malformed
      reply) closes the cached connection and surfaces a retryable
      ``TransientError`` — the client's :class:`~repro.api.retry.
      RetryPolicy` resends on a *fresh* connection;
    * the transport is callable from multiple threads; a lock keeps one
      request on the wire per connection (HTTP/1.1 without pipelining).

    It speaks HTTP/1.1 directly over the socket instead of going
    through ``http.client``: the request head renders as one f-string
    over a pre-built skeleton and leaves in a **single** ``sendall``,
    and the response head parses with ``bytes.partition`` per line —
    profiling the serving bench showed ``http.client``'s per-request
    machinery (``putheader``, ``email.feedparser``) costing more CPU
    client-side than the gateway spends serving the request.
    """

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._rfile = None
        # Every request carries these; rendered once, not per call.
        self._head_skeleton = f"Host: {host}:{port}\r\nAccept-Encoding: identity\r\n"
        #: The X-Request-Id echoed on the most recent response (None
        #: before the first call) — the client-side half of the
        #: request-id join: campaign code reads it after a call to tie
        #: client metrics to the server spans in the journal.
        self.last_request_id: str | None = None

    def _connect(self) -> None:
        sock = socket.create_connection((self._host, self._port), self._timeout)
        # One logical request spans one send; never let Nagle hold the
        # tail of a request head back waiting for an ACK.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def _drop_connection(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:  # pragma: no cover - close() best effort
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close() best effort
                pass
            self._sock = None

    def close(self) -> None:
        """Drop the cached connection (idempotent)."""
        with self._lock:
            self._drop_connection()

    def _read_response(self) -> tuple[_WireResponse, bytes]:
        """Parse one response (status line, headers, sized body)."""
        rfile = self._rfile
        status_line = rfile.readline(65536)
        if not status_line.startswith(b"HTTP/1."):
            # ValueError lands in __call__'s retryable-failure clause,
            # which also drops the poisoned connection.
            raise ValueError(f"malformed status line {status_line!r}")
        status = int(status_line[9:12])
        headers: dict[str, str] = {}
        while True:
            line = rfile.readline(65536)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.partition(b":")
            headers[name.decode("latin-1").lower()] = (
                value.strip().decode("latin-1")
            )
        length_raw = headers.get("content-length")
        if length_raw is not None:
            body = rfile.read(int(length_raw))
        elif headers.get("connection", "").lower() == "close":
            body = rfile.read()
        else:
            body = b""
        return _WireResponse(status, headers), body

    def _wire(self, request: ApiRequest) -> tuple[str, str, str, dict[str, str]]:
        """Map an envelope request to ``(method, url, body, headers)``.

        Subclasses (the gateway's REST transport) override this to speak
        a different wire surface over the same keep-alive machinery.
        """
        return (
            "POST",
            "/graph",
            request.to_json(),
            {"Content-Type": "application/json"},
        )

    def _parse(self, status: int, raw: str) -> ApiResponse:
        """Parse a raw response body back into an envelope."""
        return ApiResponse.from_json(raw)

    def _request_headers(self, request: ApiRequest, headers: dict[str, str]) -> dict[str, str]:
        """Last-touch hook over the outgoing headers (conditional GETs)."""
        return headers

    def _handle_response(
        self, request: ApiRequest, response: _WireResponse, raw: str
    ) -> ApiResponse:
        """Turn one wire response into an envelope (override to add
        response-header handling, e.g. ETag capture / 304 revalidation)."""
        return self._parse(response.status, raw)

    def __call__(self, request: ApiRequest) -> ApiResponse:
        with self._lock:
            if self._sock is None:
                try:
                    self._connect()
                except OSError as exc:
                    raise ApiError(
                        f"transport failure: {exc}", code=2, api_type="TransientError"
                    ) from exc
            try:
                method, url, body, headers = self._wire(request)
                # Stamp a fresh correlation id on every attempt (not per
                # logical request: a retry is a distinct wire exchange
                # and gets its own id, like production tracing headers).
                headers["X-Request-Id"] = os.urandom(16).hex()
                headers = self._request_headers(request, headers)
                payload = body.encode("utf-8")
                extra = "".join(f"{k}: {v}\r\n" for k, v in headers.items())
                head = (
                    f"{method} {url} HTTP/1.1\r\n{self._head_skeleton}{extra}"
                    f"Content-Length: {len(payload)}\r\n\r\n"
                )
                self._sock.sendall(head.encode("latin-1") + payload)
                response, raw_bytes = self._read_response()
                raw = raw_bytes.decode("utf-8")
                self.last_request_id = (
                    response.headers.get("x-request-id") or headers["X-Request-Id"]
                )
                if response.headers.get("connection", "").lower() == "close":
                    self._drop_connection()
                return self._handle_response(request, response, raw)
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                # Mid-stream disconnects surface as a retryable
                # TransientError, exactly like the per-call transport —
                # but the poisoned connection is dropped first so the
                # retry reconnects instead of reusing a dead socket.
                self._drop_connection()
                logger.debug("transport failure for %s: %s", request.path, exc)
                raise ApiError(
                    f"transport failure: {exc}", code=2, api_type="TransientError"
                ) from exc


def http_transport(host: str, port: int, *, timeout: float = 10.0) -> _KeepAliveTransport:
    """Build a keep-alive client transport for an :class:`HttpApiServer`.

    The returned callable is compatible with
    :class:`~repro.api.client.MarketingApiClient`; it also exposes
    ``close()`` for embedders that want to drop the socket eagerly.
    """
    return _KeepAliveTransport(host, port, timeout)
