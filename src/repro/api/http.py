"""Optional TCP/HTTP transport for the Marketing API.

The in-process transport (calling ``MarketingApiServer.handle`` directly)
is what experiments use; this module adds a real socket boundary for
integration testing and for driving the simulator from other processes:

* :class:`HttpApiServer` — a threaded HTTP server exposing the envelope
  protocol at ``POST /graph`` (one JSON-serialised :class:`ApiRequest`
  per call);
* :func:`http_transport` — a client-side transport callable compatible
  with :class:`repro.api.client.MarketingApiClient`.

The wire format is the envelope's own JSON serialisation; HTTP status is
carried both at the HTTP layer and inside the envelope so a plain curl
call shows sensible codes.

This threaded server stays the *minimal* integration-test transport;
the production serving tier is :mod:`repro.api.gateway` (asyncio,
route-per-resource REST, backpressure, multi-process workers).  Both
share the now thread-safe :class:`~repro.api.ratelimit.TokenBucket`.
"""

from __future__ import annotations

import http.client
import json
import logging
import sys
import threading
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from collections.abc import Callable

from repro.api.protocol import ApiRequest, ApiResponse
from repro.errors import ApiError

__all__ = ["HttpApiServer", "http_transport", "MAX_BODY_BYTES"]

logger = logging.getLogger(__name__)

#: Upper bound on an accepted request body.  The largest legitimate
#: payload is a 10k-hash ``/users`` batch (~700 KB of JSON); 8 MiB
#: leaves generous headroom while stopping a hostile Content-Length
#: from making ``rfile.read`` balloon the handler's memory.
MAX_BODY_BYTES = 8 * 1024 * 1024


def parse_content_length(raw: str | None, *, limit: int = MAX_BODY_BYTES) -> int:
    """Validate a ``Content-Length`` header value; raise code-100 otherwise.

    A negative value handed to ``rfile.read(length)`` means "read to
    EOF", which on a keep-alive socket never arrives — the handler
    thread hangs until the client gives up.  Non-numeric values raise
    uncaught in the handler, and an absurd length invites a memory
    bomb.  All three are client errors, so they map to a 400 envelope.
    """
    if raw is None or not raw.strip():
        raise ApiError("missing Content-Length header", code=100)
    try:
        length = int(raw)
    except ValueError as exc:
        raise ApiError(f"non-numeric Content-Length {raw!r}", code=100) from exc
    if length < 0:
        raise ApiError(f"negative Content-Length {length}", code=100)
    if length > limit:
        raise ApiError(
            f"Content-Length {length} exceeds the {limit}-byte body limit", code=100
        )
    return length


class _Handler(BaseHTTPRequestHandler):
    """Maps POST /graph onto the wrapped handler."""

    # HTTP/1.1 keeps the connection alive between requests, letting the
    # keep-alive client transport below reuse one TCP connection for a
    # whole campaign (responses always carry Content-Length).
    protocol_version = "HTTP/1.1"

    # set by the server factory
    api_handler: Callable[[ApiRequest], ApiResponse]

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path != "/graph":
            self.send_error(404, "only POST /graph is served")
            return
        try:
            length = parse_content_length(self.headers.get("Content-Length"))
            body = self.rfile.read(length).decode("utf-8")
            request = ApiRequest.from_json(body)
        except (ApiError, ValueError) as exc:
            self._respond(ApiResponse.failure(ApiError(str(exc), code=100), status=400))
            return
        self._respond(self.api_handler(request))

    def _respond(self, response: ApiResponse) -> None:
        payload = response.to_json().encode("utf-8")
        request_id = (self.headers.get("X-Request-Id") or "").strip()
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            if request_id:
                # Echo the client's correlation id (same contract as the
                # asyncio gateway) so transport-level metrics and server
                # spans join on one key.
                self.send_header("X-Request-Id", request_id[:128])
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError) as exc:
            # The client hung up mid-response (a timeout, a killed
            # process, an injected fault).  Its request was already
            # applied server-side; dropping the reply quietly mirrors
            # the real platform, and the client's retry/idempotency
            # machinery is what recovers.  A stack trace here would be
            # pure noise on every chaos run.
            logger.debug("client disconnected during response: %s", exc)
            self.close_connection = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route per-request logs to :mod:`logging` instead of stderr."""
        logger.debug("%s - %s", self.address_string(), format % args)


class _QuietThreadingHTTPServer(ThreadingHTTPServer):
    """Threaded server that doesn't stack-trace on client disconnects.

    ``_respond`` already swallows resets during the *write*; a client
    can just as well vanish while the handler thread is *reading* the
    next keep-alive request, which raises out of ``finish_request`` and
    lands in ``handle_error`` — whose default prints a traceback to
    stderr on every chaos run.  Same policy as ``_respond``: log at
    debug, move on.
    """

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            logger.debug("client %s disconnected: %s", client_address, exc)
            return
        super().handle_error(request, client_address)


class HttpApiServer:
    """Threaded HTTP wrapper around an API handler.

    Usage::

        with HttpApiServer(server.handle) as http_server:
            client = MarketingApiClient(
                http_transport("127.0.0.1", http_server.port), token
            )
    """

    def __init__(
        self,
        handler: Callable[[ApiRequest], ApiResponse],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        handler_cls = type("BoundHandler", (_Handler,), {"api_handler": staticmethod(handler)})
        self._server = _QuietThreadingHTTPServer((host, port), handler_cls)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    def start(self) -> None:
        """Serve requests on a daemon thread."""
        if self._thread is not None:
            raise ApiError("server already started")
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join the thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HttpApiServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _KeepAliveTransport:
    """Client transport reusing one ``HTTPConnection`` across requests.

    The original transport opened a fresh TCP connection per call —
    three-way handshake and slow-start tax on every one of the thousands
    of requests a campaign makes, and a steady churn of TIME_WAIT
    sockets under load.  This one keeps the connection alive and
    reconnects on failure:

    * a request that fails mid-stream (connection dropped, malformed
      reply) closes the cached connection and surfaces a retryable
      ``TransientError`` — the client's :class:`~repro.api.retry.
      RetryPolicy` resends on a *fresh* connection;
    * the transport is callable from multiple threads; a lock keeps one
      request on the wire per connection (HTTP/1.1 without pipelining).
    """

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._lock = threading.Lock()
        self._connection: http.client.HTTPConnection | None = None
        #: The X-Request-Id echoed on the most recent response (None
        #: before the first call) — the client-side half of the
        #: request-id join: campaign code reads it after a call to tie
        #: client metrics to the server spans in the journal.
        self.last_request_id: str | None = None

    def _drop_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:  # pragma: no cover - close() best effort
                pass
            self._connection = None

    def close(self) -> None:
        """Drop the cached connection (idempotent)."""
        with self._lock:
            self._drop_connection()

    def _wire(self, request: ApiRequest) -> tuple[str, str, str, dict[str, str]]:
        """Map an envelope request to ``(method, url, body, headers)``.

        Subclasses (the gateway's REST transport) override this to speak
        a different wire surface over the same keep-alive machinery.
        """
        return (
            "POST",
            "/graph",
            request.to_json(),
            {"Content-Type": "application/json"},
        )

    def _parse(self, status: int, raw: str) -> ApiResponse:
        """Parse a raw response body back into an envelope."""
        return ApiResponse.from_json(raw)

    def __call__(self, request: ApiRequest) -> ApiResponse:
        with self._lock:
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self._host, self._port, timeout=self._timeout
                )
            try:
                method, url, body, headers = self._wire(request)
                # Stamp a fresh correlation id on every attempt (not per
                # logical request: a retry is a distinct wire exchange
                # and gets its own id, like production tracing headers).
                headers = {**headers, "X-Request-Id": uuid.uuid4().hex}
                self._connection.request(method, url, body=body, headers=headers)
                response = self._connection.getresponse()
                raw = response.read().decode("utf-8")
                self.last_request_id = (
                    response.getheader("X-Request-Id") or headers["X-Request-Id"]
                )
                return self._parse(response.status, raw)
            except (OSError, http.client.HTTPException, json.JSONDecodeError) as exc:
                # Mid-stream disconnects surface as a retryable
                # TransientError, exactly like the per-call transport —
                # but the poisoned connection is dropped first so the
                # retry reconnects instead of reusing a dead socket.
                self._drop_connection()
                logger.debug("transport failure for %s: %s", request.path, exc)
                raise ApiError(
                    f"transport failure: {exc}", code=2, api_type="TransientError"
                ) from exc


def http_transport(host: str, port: int, *, timeout: float = 10.0) -> _KeepAliveTransport:
    """Build a keep-alive client transport for an :class:`HttpApiServer`.

    The returned callable is compatible with
    :class:`~repro.api.client.MarketingApiClient`; it also exposes
    ``close()`` for embedders that want to drop the socket eagerly.
    """
    return _KeepAliveTransport(host, port, timeout)
