"""Optional TCP/HTTP transport for the Marketing API.

The in-process transport (calling ``MarketingApiServer.handle`` directly)
is what experiments use; this module adds a real socket boundary for
integration testing and for driving the simulator from other processes:

* :class:`HttpApiServer` — a threaded HTTP server exposing the envelope
  protocol at ``POST /graph`` (one JSON-serialised :class:`ApiRequest`
  per call);
* :func:`http_transport` — a client-side transport callable compatible
  with :class:`repro.api.client.MarketingApiClient`.

The wire format is the envelope's own JSON serialisation; HTTP status is
carried both at the HTTP layer and inside the envelope so a plain curl
call shows sensible codes.
"""

from __future__ import annotations

import http.client
import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from collections.abc import Callable

from repro.api.protocol import ApiRequest, ApiResponse
from repro.errors import ApiError

__all__ = ["HttpApiServer", "http_transport"]

logger = logging.getLogger(__name__)


class _Handler(BaseHTTPRequestHandler):
    """Maps POST /graph onto the wrapped handler."""

    # set by the server factory
    api_handler: Callable[[ApiRequest], ApiResponse]

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path != "/graph":
            self.send_error(404, "only POST /graph is served")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length).decode("utf-8")
            request = ApiRequest.from_json(body)
        except (ApiError, ValueError) as exc:
            self._respond(ApiResponse.failure(ApiError(str(exc), code=100), status=400))
            return
        self._respond(self.api_handler(request))

    def _respond(self, response: ApiResponse) -> None:
        payload = response.to_json().encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route per-request logs to :mod:`logging` instead of stderr."""
        logger.debug("%s - %s", self.address_string(), format % args)


class HttpApiServer:
    """Threaded HTTP wrapper around an API handler.

    Usage::

        with HttpApiServer(server.handle) as http_server:
            client = MarketingApiClient(
                http_transport("127.0.0.1", http_server.port), token
            )
    """

    def __init__(
        self,
        handler: Callable[[ApiRequest], ApiResponse],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        handler_cls = type("BoundHandler", (_Handler,), {"api_handler": staticmethod(handler)})
        self._server = ThreadingHTTPServer((host, port), handler_cls)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self._server.server_address[1]

    def start(self) -> None:
        """Serve requests on a daemon thread."""
        if self._thread is not None:
            raise ApiError("server already started")
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join the thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HttpApiServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def http_transport(host: str, port: int, *, timeout: float = 10.0) -> Callable[[ApiRequest], ApiResponse]:
    """Build a client transport that speaks to an :class:`HttpApiServer`."""

    def transport(request: ApiRequest) -> ApiResponse:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            payload = request.to_json()
            connection.request(
                "POST",
                "/graph",
                body=payload,
                headers={"Content-Type": "application/json"},
            )
            raw = connection.getresponse().read().decode("utf-8")
            return ApiResponse.from_json(raw)
        except (OSError, http.client.HTTPException, json.JSONDecodeError) as exc:
            # Surfaced as a retryable TransientError: the client's
            # RetryPolicy resends a bounded number of times before the
            # fault aborts the run.
            logger.debug("transport failure for %s: %s", request.path, exc)
            raise ApiError(f"transport failure: {exc}", code=2, api_type="TransientError") from exc
        finally:
            connection.close()

    return transport
