"""Specialized JSON wire encoding and response caching for the gateway.

``json.dumps`` is general: every value walks the full C dispatch table,
every container re-discovers its shape, and the default separators
spend two bytes per delimiter on whitespace nobody reads.  The gateway
serves a *known* family of wire shapes — ``{"data", "paging"}``
envelopes, ``{"status", "body"}`` envelopes, metrics snapshots, and the
numeric column slices inside insights payloads — so this module encodes
them directly:

* static key skeletons (``b'{"data":'`` …) are pre-rendered bytes, and
  row lists sharing one key tuple render through a cached per-shape
  skeleton instead of re-encoding the keys per row;
* homogeneous numeric arrays format via ``str``/``repr`` joins — no
  per-element encoder dispatch (``repr`` of a finite float is exactly
  the C encoder's ``float.__repr__`` output, so bytes match);
* everything the fast paths do is byte-identical to
  ``json.dumps(obj, separators=(",", ":"), ensure_ascii=False)``;
  anything outside the known shapes falls back to that exact call.

The module also owns the gateway's **response cache**: an LRU of
pre-serialized reply bytes keyed by (route, canonical query) and scoped
to a world digest (``repro.cache.fingerprint.world_fingerprint``), with
strong ETags so ``If-None-Match`` revalidation can short-circuit to a
bodyless 304.  A cache hit skips decode→handler→encode entirely; a
world-digest change empties the cache, because every cached body was
computed against the previous universe.
"""

from __future__ import annotations

import json
import math
import re
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import sha256
from typing import Any

from repro.api.protocol import ApiResponse

__all__ = [
    "CachedReply",
    "ResponseCache",
    "canonical_params",
    "compact_dumps",
    "encode_envelope",
    "encode_error_body",
    "encode_obj",
    "encode_rest",
    "etag_matches",
    "make_etag",
]

_COMPACT = (",", ":")

# Strings that need no JSON escaping: no quote, no backslash, no control
# characters.  Everything the gateway emits for ids, names and enum
# values lands here; anything else falls back to the C encoder.
_PLAIN_STRING = re.compile(r'^[^"\\\x00-\x1f]*\Z')

# Row lists (list-of-dicts sharing one key tuple) render through a
# skeleton: the pre-encoded '{"k1":', ',"k2":' separator strings for
# that shape.  The insights and paging payloads reuse a handful of
# shapes for thousands of rows, so the cache is tiny and hot.
_MAX_SKELETONS = 256
_skeletons: dict[tuple[str, ...], tuple[str, ...]] = {}


def compact_dumps(obj: Any) -> str:
    """The reference encoding every fast path must match byte-for-byte."""
    return json.dumps(obj, separators=_COMPACT, ensure_ascii=False)


def _encode_str(value: str) -> str:
    if _PLAIN_STRING.match(value):
        return f'"{value}"'
    return json.dumps(value, ensure_ascii=False)


def _row_skeleton(keys: tuple[str, ...]) -> tuple[str, ...] | None:
    skeleton = _skeletons.get(keys)
    if skeleton is None:
        if any(type(k) is not str or not _PLAIN_STRING.match(k) for k in keys):
            return None
        if len(_skeletons) >= _MAX_SKELETONS:
            _skeletons.clear()
        first = keys[0]
        skeleton = _skeletons[keys] = (
            f'{{"{first}":',
            *(f',"{key}":' for key in keys[1:]),
        )
    return skeleton


def _encode_list(items: list) -> str:
    if not items:
        return "[]"
    kinds = set(map(type, items))
    if kinds == {int}:
        # bool is a subclass of int but type() distinguishes them, so
        # this join never turns True into "1".
        return f"[{','.join(map(str, items))}]"
    if kinds == {float}:
        if all(map(math.isfinite, items)):
            return f"[{','.join(map(repr, items))}]"
        return compact_dumps(items)  # NaN/Infinity spellings differ from repr
    if kinds == {str}:
        return f"[{','.join(map(_encode_str, items))}]"
    if kinds == {dict}:
        keys = tuple(items[0])
        if all(tuple(row) == keys for row in items):
            if not keys:
                return f"[{','.join(['{}'] * len(items))}]"
            skeleton = _row_skeleton(keys)
            if skeleton is not None:
                enc = _encode_value
                rows = [
                    "".join(
                        part
                        for key, sep in zip(keys, skeleton)
                        for part in (sep, enc(row[key]))
                    )
                    + "}"
                    for row in items
                ]
                return f"[{','.join(rows)}]"
    return f"[{','.join(map(_encode_value, items))}]"


def _encode_dict(obj: dict) -> str:
    if not obj:
        return "{}"
    enc = _encode_value
    try:
        body = ",".join(f"{_encode_str(key)}:{enc(value)}" for key, value in obj.items())
    except TypeError:
        # Non-string keys: json.dumps coerces them (1 -> "1"); defer to
        # it so the bytes stay identical to the reference encoding.
        return compact_dumps(obj)
    return f"{{{body}}}"


def _encode_value(value: Any) -> str:
    kind = type(value)
    if kind is str:
        return _encode_str(value)
    if kind is int:
        return str(value)
    if kind is dict:
        return _encode_dict(value)
    if kind is list:
        return _encode_list(value)
    if kind is float:
        return repr(value) if math.isfinite(value) else compact_dumps(value)
    if value is None:
        return "null"
    if kind is bool:
        return "true" if value else "false"
    # Subclasses, tuples, and anything exotic: the reference encoder.
    return compact_dumps(value)


def encode_obj(obj: Any) -> bytes:
    """Encode any JSON-serialisable object (compact, UTF-8 bytes)."""
    return _encode_value(obj).encode("utf-8")


# Pre-rendered static skeletons for the two wire envelopes.
_DATA_PREFIX = b'{"data":'
_PAGING_SEP = b',"paging":'
_ERROR_PREFIX = b'{"error":'
_RETRY_SEP = b',"retry_after":'
_STATUS_PREFIX = b'{"status":'
_BODY_SEP = b',"body":'
_CLOSE = b"}"


def _rest_body(response: ApiResponse) -> bytes:
    if response.ok:
        parts = [_DATA_PREFIX, encode_obj(response.data)]
        if response.paging is not None:
            parts.append(_PAGING_SEP)
            parts.append(encode_obj(response.paging))
    else:
        parts = [_ERROR_PREFIX, encode_obj(response.error)]
        if response.retry_after is not None:
            parts.append(_RETRY_SEP)
            parts.append(_encode_value(response.retry_after).encode("utf-8"))
    parts.append(_CLOSE)
    return b"".join(parts)


def encode_rest(response: ApiResponse) -> bytes:
    """The REST wire body: ``{"data",...}`` / ``{"error",...}`` flat JSON."""
    return _rest_body(response)


def encode_envelope(response: ApiResponse) -> bytes:
    """The ``POST /graph`` wire body: ``{"status": N, "body": {...}}``.

    Single-pass — the old path serialised the envelope via ``to_json``,
    parsed it back into dicts, then serialised those again per response.
    """
    return b"".join(
        (_STATUS_PREFIX, str(response.status).encode("ascii"), _BODY_SEP,
         _rest_body(response), _CLOSE)
    )


def encode_error_body(
    message: str,
    *,
    code: int,
    api_type: str = "GraphMethodException",
    retry_after: float | None = None,
) -> bytes:
    """A gateway-level error body (no ApiResponse behind it)."""
    error = {"error": {"message": message, "type": api_type, "code": code}}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return encode_obj(error)


# ---------------------------------------------------------------------------
# Response cache


def canonical_params(params: dict[str, Any]) -> str:
    """A canonical cache-key string for request params.

    Key order is irrelevant to the handler, so it must be irrelevant to
    the cache: sort keys and encode compactly.  ``?limit=10&after=x``
    and ``?after=x&limit=10`` share one entry.
    """
    if not params:
        return ""
    return json.dumps(params, separators=_COMPACT, sort_keys=True, ensure_ascii=False)


def make_etag(body: bytes) -> str:
    """A strong ETag over the exact reply bytes (quoted, per RFC 9110)."""
    return f'"{sha256(body).hexdigest()[:24]}"'


def etag_matches(if_none_match: str, etag: str) -> bool:
    """RFC 9110 ``If-None-Match`` evaluation against one strong ETag.

    Weak validators (``W/"..."``) never match here: cached replies are
    byte-exact, and a 304 promises the client's copy is byte-identical.
    """
    if if_none_match.strip() == "*":
        return True
    return any(candidate.strip() == etag for candidate in if_none_match.split(","))


@dataclass(frozen=True, slots=True)
class CachedReply:
    """One pre-serialized cached response (bytes + strong ETag)."""

    status: int
    body: bytes
    etag: str


class ResponseCache:
    """LRU of pre-serialized GET replies, scoped to a world digest.

    Keys are (route path, canonical query); values are the exact bytes
    a fresh encode would produce, so hits skip the handler *and* the
    encoder and cached/uncached bodies are byte-identical by
    construction.  Any successful mutation through the gateway calls
    :meth:`invalidate` (mutable API state has no finer-grained
    dependency tracking), and :meth:`set_world_version` empties the
    cache when the universe fingerprint changes — a cached body from
    another world digest must never be served.

    Single-threaded by design: the gateway dispatches inline on its
    event loop, mirroring the server's single-writer model.
    """

    def __init__(self, max_entries: int = 256, *, world_version: str = "") -> None:
        self._entries: OrderedDict[tuple[str, str], CachedReply] = OrderedDict()
        self._max_entries = max_entries
        self._world_version = world_version
        self.hits = 0
        self.misses = 0
        self.revalidations = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def world_version(self) -> str:
        return self._world_version

    def lookup(self, key: tuple[str, str]) -> CachedReply | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(self, key: tuple[str, str], status: int, body: bytes) -> CachedReply:
        entry = CachedReply(status=status, body=body, etag=make_etag(body))
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def invalidate(self) -> None:
        """Drop every entry (a mutation changed the world behind them)."""
        if self._entries:
            self.invalidations += 1
            self._entries.clear()

    def set_world_version(self, world_version: str) -> None:
        """Adopt a new world digest, dropping every stale body."""
        if world_version != self._world_version:
            self._world_version = world_version
            self.invalidate()

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "revalidations": self.revalidations,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }
