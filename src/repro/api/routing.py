"""Precompiled segment-trie route dispatch.

Both the gateway's top-level routes and the Marketing API's resource
routes used to match per request — string prefix checks in the gateway,
and a literal dict of route tuples rebuilt on *every* call in
``MarketingApiServer._route``.  A :class:`RouteTrie` compiles the route
table once at server construction: each pattern becomes a path through
literal and parameter nodes, and matching a request is one walk over
its path segments with no per-request allocation of route tables.

Patterns are ``/``-joined segments; a segment is either a literal, a
parameter capture, or (only as the final segment) a rest capture:

* ``act_{account_id:account}`` — a typed capture with a literal prefix:
  the converter is *bound at compile time*, validates the segment, and
  yields the converted value (here the account id with ``act_``
  stripped).
* ``{ad_id}`` — an untyped capture (any non-empty segment).
* ``{resource...}`` — captures the remaining path, joined by ``/``
  (the gateway's ``/v1/{resource...}`` mount).

Matching prefers literal children, then parameter children in
registration order, backtracking when a deeper segment (or the method
table) fails — so ``POST /act_1/ads`` takes the account branch while
``POST /act_1/users`` falls back to treating ``act_1`` as a plain
object id, exactly like the old linear matcher.  Method ``"*"``
registers a handler for every verb.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import ValidationError

__all__ = ["RouteTrie", "CONVERTERS"]


def _convert_str(segment: str) -> str:
    return segment


def _convert_int(segment: str) -> int | None:
    return int(segment) if segment.isdigit() else None


def _convert_account(segment: str) -> str | None:
    """``act_<id>`` segments; yields the bare id (prefix stripped)."""
    if segment.startswith("act_") and len(segment) > 4:
        return segment[4:]
    return None


#: Typed path-param converters, resolved once when a pattern compiles.
#: A converter returns the captured value, or ``None`` to reject the
#: segment (letting matching backtrack to the next alternative).
CONVERTERS: dict[str, Callable[[str], Any]] = {
    "str": _convert_str,
    "int": _convert_int,
    "account": _convert_account,
}


class _Node:
    __slots__ = ("literals", "params", "rest", "handlers")

    def __init__(self) -> None:
        self.literals: dict[str, _Node] = {}
        # (param name, compiled converter, child) in registration order.
        self.params: list[tuple[str, Callable[[str], Any], _Node]] = []
        # Terminal rest capture: (param name, {method: handler}).
        self.rest: tuple[str, dict[str, Any]] | None = None
        self.handlers: dict[str, Any] = {}


def _compile_segment(segment: str) -> tuple[str, str, str] | None:
    """Parse one ``prefix{name:converter}`` segment; None for literals."""
    open_brace = segment.find("{")
    if open_brace < 0:
        return None
    if not segment.endswith("}"):
        raise ValidationError(f"malformed route segment {segment!r}")
    prefix = segment[:open_brace]
    spec = segment[open_brace + 1 : -1]
    name, _, converter = spec.partition(":")
    if not name:
        raise ValidationError(f"unnamed capture in segment {segment!r}")
    return prefix, name, converter or "str"


class RouteTrie:
    """A compiled route table: ``add`` at startup, ``match`` per request."""

    __slots__ = ("_root",)

    def __init__(self) -> None:
        self._root = _Node()

    def add(self, method: str, pattern: str, handler: Any) -> None:
        """Register ``handler`` for ``method`` (or ``"*"``) at ``pattern``."""
        if not pattern.startswith("/"):
            raise ValidationError(f"route pattern must start with '/': {pattern!r}")
        node = self._root
        segments = [s for s in pattern.split("/") if s]
        for position, segment in enumerate(segments):
            if segment.endswith("...}") and segment.startswith("{"):
                if position != len(segments) - 1:
                    raise ValidationError(
                        f"rest capture must be the final segment: {pattern!r}"
                    )
                name = segment[1:-4]
                if node.rest is None:
                    node.rest = (name, {})
                elif node.rest[0] != name:
                    raise ValidationError(
                        f"conflicting rest captures at {pattern!r}"
                    )
                _register(node.rest[1], method, pattern, handler)
                return
            compiled = _compile_segment(segment)
            if compiled is None:
                node = node.literals.setdefault(segment, _Node())
                continue
            prefix, name, converter_name = compiled
            try:
                converter = CONVERTERS[converter_name]
            except KeyError:
                raise ValidationError(
                    f"unknown converter {converter_name!r} in {pattern!r}"
                ) from None
            if prefix:
                # A literal prefix folds into the converter so matching
                # stays a single call per candidate segment.
                converter = _prefixed(prefix, converter)
            for existing_name, existing_converter, child in node.params:
                if existing_name == name and existing_converter is converter:
                    node = child
                    break
            else:
                child = _Node()
                node.params.append((name, converter, child))
                node = child
        _register(node.handlers, method, pattern, handler)

    def match(self, method: str, path: str) -> tuple[Any, dict[str, Any]] | None:
        """Resolve ``(handler, path_params)`` or ``None`` (no route)."""
        segments = [s for s in path.split("/") if s]
        captures: dict[str, Any] = {}
        handler = self._match(self._root, method, segments, 0, captures)
        if handler is None:
            return None
        return handler, captures

    def _match(
        self,
        node: _Node,
        method: str,
        segments: list[str],
        index: int,
        captures: dict[str, Any],
    ) -> Any | None:
        if index == len(segments):
            handlers = node.handlers
            return handlers.get(method) or handlers.get("*")
        segment = segments[index]
        literal = node.literals.get(segment)
        if literal is not None:
            handler = self._match(literal, method, segments, index + 1, captures)
            if handler is not None:
                return handler
        for name, converter, child in node.params:
            value = converter(segment)
            if value is None:
                continue
            captures[name] = value
            handler = self._match(child, method, segments, index + 1, captures)
            if handler is not None:
                return handler
            del captures[name]
        if node.rest is not None:
            name, handlers = node.rest
            handler = handlers.get(method) or handlers.get("*")
            if handler is not None:
                captures[name] = "/".join(segments[index:])
                return handler
        return None


def _prefixed(prefix: str, converter: Callable[[str], Any]) -> Callable[[str], Any]:
    def convert(segment: str) -> Any:
        if not segment.startswith(prefix) or len(segment) == len(prefix):
            return None
        return converter(segment[len(prefix) :])

    return convert


def _register(handlers: dict[str, Any], method: str, pattern: str, handler: Any) -> None:
    if method in handlers:
        raise ValidationError(f"duplicate route {method} {pattern!r}")
    handlers[method] = handler
