"""The Marketing API boundary.

The paper's toolchain talks to Facebook exclusively through the Marketing
API (ad creation) and the Insights API (delivery reporting), from a single
vantage point and without parallel queries (§4.1).  To keep the audit code
honest, this package puts the same boundary between the measurement
methodology (:mod:`repro.core`) and the platform simulator
(:mod:`repro.platform`):

* :mod:`repro.api.protocol` — the Graph-API-style request/response
  envelope and error payloads;
* :mod:`repro.api.server` — the routed endpoint handlers wrapping one
  platform instance;
* :mod:`repro.api.client` — the typed client the audit code uses;
* :mod:`repro.api.ratelimit` — token-bucket request limiting (the real
  API throttles; the audit code must survive HTTP-style 4xx responses);
* :mod:`repro.api.retry` — the bounded, deterministic retry policy
  every client request routes through;
* :mod:`repro.api.faults` — seeded chaos middleware injecting 429s,
  5xxs, connection resets and slow responses into any transport;
* :mod:`repro.api.metrics` — per-endpoint request/retry/latency
  observability exposed on the client;
* :mod:`repro.api.pagination` — cursor pagination for list endpoints;
* :mod:`repro.api.http` — the minimal threaded HTTP transport for
  integration tests;
* :mod:`repro.api.gateway` — the production serving tier: an asyncio
  REST gateway with auth, throttling, backpressure and graceful drain,
  scaled out as worker processes over a shared-memory universe.

The audit code never imports :mod:`repro.platform` internals directly —
tests enforce that everything observable flows through this API.
"""

from repro.api.client import MarketingApiClient
from repro.api.faults import FaultInjectingTransport, FaultKind
from repro.api.gateway import (
    AsyncGateway,
    GatewayCluster,
    GatewayConfig,
    GatewayServer,
    rest_transport,
)
from repro.api.metrics import ClientMetrics
from repro.api.protocol import ApiRequest, ApiResponse
from repro.api.ratelimit import TokenBucket
from repro.api.retry import RetryPolicy
from repro.api.server import MarketingApiServer

__all__ = [
    "ApiRequest",
    "ApiResponse",
    "AsyncGateway",
    "ClientMetrics",
    "FaultInjectingTransport",
    "FaultKind",
    "GatewayCluster",
    "GatewayConfig",
    "GatewayServer",
    "MarketingApiClient",
    "MarketingApiServer",
    "RetryPolicy",
    "TokenBucket",
    "rest_transport",
]
