"""Bounded, deterministic retry for Marketing API requests.

The paper's harness ran paired campaigns for weeks against a throttled,
occasionally flaky production API (§3.2, §4.1); the driver layer only
gets week-long measurements because every request path survives 429s,
5xx responses and transport flakes — and gives up after a *bounded*
number of attempts instead of spinning forever.

This module centralises that behaviour:

* :class:`RetryPolicy` — a frozen description of the retry schedule:
  attempt cap, exponential backoff with a delay cap, deterministic
  seeded jitter, and the predicate deciding which failures are
  retryable (429, any 5xx, and ``TransientError`` code-2 transport
  faults);
* :func:`send_with_retry` — the one attempt loop both
  :meth:`MarketingApiClient.call <repro.api.client.MarketingApiClient.call>`
  and ``get_paged`` route through.

Jitter is derived from ``(seed, attempt)`` with a private
``random.Random`` — never from wall-clock entropy — so a schedule is
reproducible across runs and simulations stay bit-identical.  When a
429 response carries a ``retry_after`` hint (the simulated server
computes it from :meth:`TokenBucket.seconds_until_available
<repro.api.ratelimit.TokenBucket.seconds_until_available>`), the wait
honors the hint: the client never knocks again before the bucket can
possibly have a token.
"""

from __future__ import annotations

import logging
import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.api.protocol import ApiResponse
from repro.errors import ApiError, ValidationError

__all__ = ["RetryPolicy", "send_with_retry"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times to try a request, and how long to wait in between.

    Parameters
    ----------
    max_attempts:
        Total attempts, including the first (``1`` disables retries).
    base_delay:
        Backoff before the first retry, in (simulated) seconds.
    backoff_factor:
        Multiplier applied per retry (exponential backoff).
    max_delay:
        Ceiling on a single backoff wait.
    jitter:
        Fraction of the delay randomised away (``0.1`` → each wait is
        shrunk by up to 10%).  Deterministic given ``seed``.
    seed:
        Seed for the jitter stream.
    """

    max_attempts: int = 6
    base_delay: float = 1.0
    backoff_factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError("max_attempts must be at least 1")
        if self.base_delay <= 0:
            raise ValidationError("base_delay must be positive")
        if self.backoff_factor < 1.0:
            raise ValidationError("backoff_factor must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValidationError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValidationError("jitter must be in [0, 1)")

    # -- predicates ---------------------------------------------------------

    def retryable_status(self, status: int) -> bool:
        """True for responses worth another attempt (429 and any 5xx)."""
        return status == 429 or 500 <= status < 600

    def retryable_exception(self, exc: BaseException) -> bool:
        """True for transient transport faults (code-2 ``TransientError``)."""
        return isinstance(exc, ApiError) and (
            exc.api_type == "TransientError" or exc.code == 2
        )

    # -- schedule -----------------------------------------------------------

    def backoff_delay(self, attempt: int, *, retry_after: float | None = None) -> float:
        """Seconds to wait after a failed ``attempt`` (0-based).

        The exponential delay is capped at :attr:`max_delay`, jittered
        deterministically from ``(seed, attempt)``, and raised to any
        server-provided ``retry_after`` hint.
        """
        if attempt < 0:
            raise ValidationError("attempt must be non-negative")
        raw = min(self.max_delay, self.base_delay * self.backoff_factor**attempt)
        frac = random.Random((self.seed + 1) * 1_000_003 + attempt).random()
        delay = raw * (1.0 - self.jitter * frac)
        if retry_after is not None and retry_after > delay:
            delay = float(retry_after)
        return delay

    def schedule(self) -> list[float]:
        """The full backoff schedule (one wait per retry), for inspection."""
        return [self.backoff_delay(i) for i in range(self.max_attempts - 1)]


def send_with_retry(
    policy: RetryPolicy,
    send: Callable[[], ApiResponse],
    *,
    sleep: Callable[[float], None],
    on_retry: Callable[[int, float, str], None] | None = None,
) -> ApiResponse:
    """Run ``send`` under ``policy``; the shared attempt loop.

    Returns the first non-retryable response, or — after
    ``policy.max_attempts`` attempts — the last retryable response
    (callers decide how to surface exhaustion).  Transient transport
    faults (per :meth:`RetryPolicy.retryable_exception`) are retried the
    same way and re-raised once attempts run out; non-retryable
    exceptions propagate immediately.

    ``on_retry(attempt, delay, reason)`` fires before each backoff wait
    so callers can count retries and backoff time.
    """
    last_response: ApiResponse | None = None
    for attempt in range(policy.max_attempts):
        try:
            response = send()
        except ApiError as exc:
            if not policy.retryable_exception(exc) or attempt + 1 >= policy.max_attempts:
                raise
            delay = policy.backoff_delay(attempt)
            logger.debug(
                "retrying after transient fault attempt=%d delay=%.3f error=%s",
                attempt,
                delay,
                exc,
            )
            if on_retry is not None:
                on_retry(attempt, delay, f"transient: {exc}")
            sleep(delay)
            continue
        last_response = response
        if not policy.retryable_status(response.status):
            return response
        if attempt + 1 >= policy.max_attempts:
            break
        delay = policy.backoff_delay(attempt, retry_after=response.retry_after)
        logger.debug(
            "retrying after status=%d attempt=%d delay=%.3f retry_after=%s",
            response.status,
            attempt,
            delay,
            response.retry_after,
        )
        if on_retry is not None:
            on_retry(attempt, delay, f"status {response.status}")
        sleep(delay)
    assert last_response is not None  # loop ran at least once without raising
    return last_response
