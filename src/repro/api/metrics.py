"""Request-level observability for the Marketing API client.

Week-long audit runs need to answer, cheaply and after the fact: how
many requests did each endpoint see, how often were they throttled or
retried, how much (simulated) time went to backoff, and did anything
give up?  :class:`ClientMetrics` accumulates exactly that, per
normalised endpoint, on every :class:`~repro.api.client.MarketingApiClient`.

Since the unified observability layer (:mod:`repro.obs`) landed,
``ClientMetrics`` is a *thin adapter* over a
:class:`~repro.obs.metrics.MetricsRegistry`: every recording hook
writes ``api_client_*`` series into a registry (a private one by
default), and the historical :class:`EndpointStats` rows — the schema
``api_stats`` consumers and the ``repro api-stats`` CLI rely on — are
reconstructed as a view over those series.

**Reset semantics.**  Metrics belong to the client instance (each CLI
invocation builds a fresh client, so ``repro api-stats`` never mixes
runs); a long-lived embedder that reuses one client across phases calls
:meth:`ClientMetrics.reset` between them, which drops every series of
the backing registry.  Pass a shared registry only when you *want*
several clients rolled up together — then ``reset()`` clears all of it.

Endpoint keys are templates, not raw paths — ``POST act_{id}/adsets``
rather than ``POST /act_20190001/adsets`` — so a 200-ad campaign rolls
up into a dozen rows instead of hundreds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.api.protocol import HttpMethod
from repro.obs.metrics import MetricsRegistry

__all__ = ["EndpointStats", "ClientMetrics", "endpoint_key"]


def endpoint_key(method: HttpMethod, path: str) -> str:
    """Normalise a request to a per-endpoint template key.

    Object ids are collapsed (``act_123`` → ``act_{id}``, other leading
    ids → ``{object}``) while the route suffix is kept verbatim::

        POST /act_20190001/adsets  ->  POST act_{id}/adsets
        GET  /ad_7/insights        ->  GET {object}/insights
        GET  /aud_3                ->  GET {object}
    """
    parts = [p for p in path.split("/") if p]
    if not parts:
        return f"{method.value} /"
    head = "act_{id}" if parts[0].startswith("act_") else "{object}"
    return " ".join([method.value, "/".join([head, *parts[1:]])])


@dataclass
class EndpointStats:
    """Counters and aggregates for one endpoint template."""

    requests: int = 0  #: attempts actually sent over the transport
    retries: int = 0  #: backoff-then-resend events
    giveups: int = 0  #: requests abandoned after exhausting the policy
    errors: int = 0  #: requests whose final outcome was an API error
    latency_seconds: float = 0.0  #: summed per-attempt transport latency
    backoff_seconds: float = 0.0  #: summed (simulated) backoff waits

    def merge(self, other: "EndpointStats") -> None:
        """Accumulate ``other`` into this row (used for totals)."""
        self.requests += other.requests
        self.retries += other.retries
        self.giveups += other.giveups
        self.errors += other.errors
        self.latency_seconds += other.latency_seconds
        self.backoff_seconds += other.backoff_seconds

    def as_dict(self) -> dict[str, Any]:
        """JSON-able row."""
        return {
            "requests": self.requests,
            "retries": self.retries,
            "giveups": self.giveups,
            "errors": self.errors,
            "latency_seconds": round(self.latency_seconds, 6),
            "backoff_seconds": round(self.backoff_seconds, 6),
        }


#: ``(registry counter name, EndpointStats field)`` pairs of the adapter.
_COUNTER_FIELDS: tuple[tuple[str, str], ...] = (
    ("api_client_requests", "requests"),
    ("api_client_retries", "retries"),
    ("api_client_giveups", "giveups"),
    ("api_client_errors", "errors"),
    ("api_client_backoff_seconds", "backoff_seconds"),
)

#: Histogram holding per-attempt transport latency, per endpoint.
_LATENCY_HISTOGRAM = "api_client_latency_seconds"


class ClientMetrics:
    """Per-endpoint request metrics, exposed as ``client.metrics``.

    A view over ``api_client_*`` series in :attr:`registry`; see the
    module docstring for ownership and reset semantics.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        #: The backing registry (private unless one was injected).
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- recording hooks (called by the client) -----------------------------

    def record_attempt(self, key: str, latency_seconds: float) -> None:
        """One attempt hit the transport."""
        self.registry.inc("api_client_requests", 1, endpoint=key)
        self.registry.observe(_LATENCY_HISTOGRAM, latency_seconds, endpoint=key)

    def record_retry(self, key: str, delay_seconds: float) -> None:
        """One backoff-and-resend happened."""
        self.registry.inc("api_client_retries", 1, endpoint=key)
        self.registry.inc("api_client_backoff_seconds", delay_seconds, endpoint=key)

    def record_giveup(self, key: str) -> None:
        """The retry policy was exhausted for one request."""
        self.registry.inc("api_client_giveups", 1, endpoint=key)

    def record_error(self, key: str) -> None:
        """A request's final outcome was an API error."""
        self.registry.inc("api_client_errors", 1, endpoint=key)

    # -- views ---------------------------------------------------------------

    @property
    def endpoints(self) -> dict[str, EndpointStats]:
        """Per-endpoint rows reconstructed from the registry (sorted)."""
        rows: dict[str, EndpointStats] = {}
        for name, field_name in _COUNTER_FIELDS:
            for labels, value in self.registry.series(name):
                endpoint = labels.get("endpoint", "")
                row = rows.setdefault(endpoint, EndpointStats())
                if field_name == "backoff_seconds":
                    row.backoff_seconds = value
                else:
                    setattr(row, field_name, int(value))
        for labels, state in self.registry.histogram_series(_LATENCY_HISTOGRAM):
            endpoint = labels.get("endpoint", "")
            rows.setdefault(endpoint, EndpointStats()).latency_seconds = state.total
        return dict(sorted(rows.items()))

    def totals(self) -> EndpointStats:
        """All endpoints merged into one row."""
        total = EndpointStats()
        for row in self.endpoints.values():
            total.merge(row)
        return total

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump: per-endpoint rows plus a ``totals`` row."""
        return {
            "endpoints": {key: row.as_dict() for key, row in self.endpoints.items()},
            "totals": self.totals().as_dict(),
        }

    def reset(self) -> None:
        """Drop all accumulated rows (clears the backing registry)."""
        self.registry.reset()

    def render(self) -> str:
        """Fixed-width table for CLI display (``repro api-stats``)."""
        headers = ["endpoint", "requests", "retries", "giveups", "errors", "backoff_s"]
        rows = [
            [
                key,
                str(row.requests),
                str(row.retries),
                str(row.giveups),
                str(row.errors),
                f"{row.backoff_seconds:.2f}",
            ]
            for key, row in self.endpoints.items()
        ]
        total = self.totals()
        rows.append(
            [
                "TOTAL",
                str(total.requests),
                str(total.retries),
                str(total.giveups),
                str(total.errors),
                f"{total.backoff_seconds:.2f}",
            ]
        )
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows))
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * w for w in widths),
        ]
        lines.extend("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)) for row in rows)
        return "\n".join(lines)
