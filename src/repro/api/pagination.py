"""Cursor pagination for list endpoints.

Graph API list responses return ``paging.cursors.after`` tokens; clients
iterate until no ``after`` cursor remains.  Cursors here are opaque
base64-encoded offsets validated against the collection they came from.
"""

from __future__ import annotations

import base64
import binascii
from typing import Any

from repro.errors import ApiError

__all__ = ["paginate", "encode_cursor", "decode_cursor"]


def encode_cursor(collection: str, offset: int) -> str:
    """Encode an opaque cursor for ``collection`` at ``offset``."""
    return base64.urlsafe_b64encode(f"{collection}:{offset}".encode()).decode()


def decode_cursor(collection: str, cursor: str) -> int:
    """Decode a cursor, validating it belongs to ``collection``."""
    try:
        decoded = base64.urlsafe_b64decode(cursor.encode()).decode()
        name, _, offset = decoded.rpartition(":")
    except (binascii.Error, UnicodeDecodeError) as exc:
        raise ApiError(f"malformed cursor {cursor!r}", code=100) from exc
    if name != collection:
        raise ApiError(f"cursor {cursor!r} does not belong to {collection!r}", code=100)
    try:
        return int(offset)
    except ValueError as exc:
        raise ApiError(f"malformed cursor offset in {cursor!r}", code=100) from exc


def paginate(
    collection_name: str,
    items: list[Any],
    *,
    after: str | None = None,
    limit: int = 25,
) -> tuple[list[Any], dict[str, Any] | None]:
    """Slice ``items`` by cursor; returns (page, paging envelope).

    The paging envelope is ``None`` once the final page is reached, else
    ``{"cursors": {"after": ...}}``.
    """
    if limit < 1:
        raise ApiError("limit must be at least 1", code=100)
    start = decode_cursor(collection_name, after) if after else 0
    if start < 0 or start > len(items):
        raise ApiError(f"cursor offset {start} out of range", code=100)
    page = items[start : start + limit]
    next_offset = start + len(page)
    if next_offset >= len(items):
        return page, None
    return page, {"cursors": {"after": encode_cursor(collection_name, next_offset)}}
