"""Production serving tier: asyncio REST gateway over the envelope protocol.

The threaded :class:`~repro.api.http.HttpApiServer` stays the minimal
integration transport; this module is the tier the ROADMAP's serving
milestone asks for:

* :class:`AsyncGateway` — an asyncio HTTP/1.1 server with a
  route-per-resource REST surface (``/v1/<graph path>``, Bearer auth,
  JSON bodies) *and* the back-compat envelope endpoint (``POST /graph``)
  so existing clients work unchanged.  Per-token authentication and
  token-bucket rate limiting, bounded request bodies, a connection cap
  that sheds load with ``503`` + ``retry_after``, and graceful drain on
  shutdown are all enforced here, in front of the world.
* :class:`GatewayServer` — a synchronous wrapper that runs one
  ``AsyncGateway`` on a background event-loop thread (tests, embedders,
  ``repro serve --workers 0``).
* :class:`GatewayCluster` — N ``spawn`` worker processes sharing one
  :class:`~repro.population.shm.SharedUniverse` block and one TCP port
  via ``SO_REUSEPORT``.  Each worker maps the same physical universe
  pages (82 MiB at xl, paid once) and rebuilds only the small models
  from the world config's named seed streams.
* :func:`rest_transport` — a keep-alive client transport speaking the
  REST surface, drop-in compatible with
  :class:`~repro.api.client.MarketingApiClient`.

**Concurrency model.**  The world behind a gateway is single-writer by
construction: every request is dispatched inline on the event loop, so
handler code never contends (the server's state lock is then
uncontended insurance, not a hot path).  Scaling out is by process, not
thread — and because ``SO_REUSEPORT`` balances *connections*, a
keep-alive client sticks to one worker for the life of its connection.
Each worker owns an independent copy of the mutable world state
(audiences, ads, delivery history) over the shared immutable columns;
cross-connection read-your-writes holds within a connection, not across
workers — the same affinity contract real sharded ad servers give.

**The request hot path** is specialised end to end: routes resolve
through a precompiled segment trie (:mod:`repro.api.routing`), reply
bodies render through the shape-aware encoder in :mod:`repro.api.wire`,
idempotent GETs are served from an LRU of pre-serialized bytes keyed by
(route, canonical query) and scoped to the world digest — with strong
ETags, so ``If-None-Match`` revalidation collapses to a bodyless
``304`` — and rate limiting runs against the cluster-wide shared-memory
plane (:class:`~repro.api.ratelimit.SharedRateLimiter`) when one is
attached, making a token's budget hold across workers.  Each stage is
measured (``api.decode`` / ``api.route`` / ``api.cache`` /
``api.encode`` spans when tracing; always-on monotonic accumulators
surfaced as ``gateway_stage_*`` gauges at ``/metrics`` time).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import signal
import socket
import threading
import time
import urllib.parse
import uuid
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, replace
from typing import Any

from repro.api.http import MAX_BODY_BYTES, _KeepAliveTransport, parse_content_length
from repro.api.metrics import endpoint_key
from repro.api.protocol import ApiRequest, ApiResponse, HttpMethod
from repro.api.ratelimit import SharedRateLimiter, TokenBucket
from repro.api.routing import RouteTrie
from repro.api.wire import (
    ResponseCache,
    canonical_params,
    encode_envelope,
    encode_error_body,
    encode_obj,
    encode_rest,
    etag_matches,
)
from repro.errors import ApiError, ValidationError
from repro.obs.cluster import (
    HEARTBEAT_INTERVAL,
    SharedSink,
    TelemetryBlock,
    TelemetryReader,
)
from repro.obs.metrics import get_registry
from repro.obs.prometheus import render_prometheus
from repro.obs.tracer import get_tracer

__all__ = [
    "GatewayConfig",
    "AsyncGateway",
    "GatewayServer",
    "GatewayCluster",
    "WorkerSpec",
    "rest_transport",
]

logger = logging.getLogger(__name__)

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Bodies larger than this are read in bounded chunks rather than one
#: ``readexactly`` allocation (the stream buffer never has to hold more
#: than a chunk beyond what the parser consumed).
_BODY_CHUNK = 64 * 1024

#: The per-request stages the gateway accounts for; also the span names
#: (``api.<stage>``) when tracing is enabled.
_STAGES = ("route", "decode", "cache", "handler", "encode")


@dataclass(slots=True)
class WireReply:
    """One fully rendered HTTP reply: status + pre-serialized body bytes."""

    status: int
    body: bytes
    content_type: str = "application/json"
    #: Extra response headers, e.g. ``(("ETag", '"..."'),)``.
    headers: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True, slots=True)
class GatewayConfig:
    """Limits and behaviour knobs of one gateway (process-local)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Concurrent-connection cap; connections beyond it are shed with a
    #: ``503`` envelope carrying ``retry_after`` before any read.
    max_connections: int = 128
    max_body_bytes: int = MAX_BODY_BYTES
    #: Per-token bucket: burst capacity and sustained refill.
    rate_capacity: int = 5000
    rate_refill_per_second: float = 2500.0
    #: Idle keep-alive connections are closed after this many seconds.
    keepalive_timeout: float = 30.0
    #: Graceful drain: how long ``stop()`` waits for in-flight requests.
    drain_timeout: float = 10.0
    #: ``retry_after`` hint attached to shed-load 503 responses.
    retry_after_hint: float = 0.5
    #: Bind with ``SO_REUSEPORT`` (multi-worker port sharing).
    reuse_port: bool = False
    #: Response-cache capacity (idempotent GETs, pre-serialized bytes);
    #: ``0`` disables caching.
    cache_entries: int = 256
    #: Token cost of one ``POST .../deliver`` request.  Delivery runs the
    #: auction over the whole audience — the one endpoint whose cost is
    #: not one unit of server work — so operators can weight it; the
    #: default keeps historic request-counting semantics.
    rate_cost_deliver: float = 1.0


_QUERY_JSON_LEAD = frozenset('-0123456789{["tfn')


def _decode_query_value(raw: str) -> Any:
    """Best-effort typed decode of one query-string value.

    The envelope protocol carries typed JSON params; a query string is
    all strings.  ``?limit=25`` should reach the server as ``25``, so
    values that parse as JSON scalars/containers are decoded and
    anything else stays a string.  Plain identifiers (the common case —
    ids, enum names) cannot start a JSON value, so they skip the
    parse-and-catch entirely.
    """
    if not raw or raw[0] not in _QUERY_JSON_LEAD:
        return raw
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


class AsyncGateway:
    """One asyncio gateway over an ``ApiRequest -> ApiResponse`` handler.

    Routes:

    * ``POST /graph`` — the envelope endpoint (body is one serialised
      :class:`ApiRequest`); existing ``http_transport`` clients work
      against a gateway unchanged.
    * ``GET/POST/DELETE /v1/<path>`` — the REST surface.  ``<path>`` is
      the Graph-style resource path (``/v1/act_1/campaigns``), the
      Bearer token supplies auth, and params come from the JSON body
      (when present) or the query string.
    * ``GET /healthz`` — liveness (no auth): worker pid + counters; in
      a cluster, a ``cluster`` section with per-worker heartbeats.
    * ``GET /metrics`` — the metrics snapshot.  With a telemetry reader
      attached (cluster mode) this is the *merged cluster view* —
      every series under ``worker=<pid>`` labels plus a
      ``worker=_merged`` rollup; without one it is the worker-local
      registry.  ``?format=prometheus`` returns text exposition format
      instead of JSON.

    Every request carries an ``X-Request-Id`` (honoured from the client
    or assigned), echoed on the response and stamped onto the
    ``api.request`` span and every span that finishes inside the
    handler — the join key between client metrics, gateway spans and
    delivery-engine spans in the journal.  Requests are counted under
    ``gateway_requests``; rejections (auth, throttle, overload, body)
    land in ``gateway_rejections`` by reason.
    """

    def __init__(
        self,
        handler: Callable[[ApiRequest], ApiResponse],
        access_tokens: set[str],
        config: GatewayConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        telemetry_reader: TelemetryReader | None = None,
        rate_plane: SharedRateLimiter | None = None,
        world_version: str = "",
    ) -> None:
        self._handler = handler
        self._tokens = set(access_tokens)
        self._config = config or GatewayConfig()
        self._clock = clock
        self._telemetry_reader = telemetry_reader
        self._rate_plane = rate_plane
        self._buckets: dict[str, TokenBucket] = {}
        self._cache = (
            ResponseCache(self._config.cache_entries, world_version=world_version)
            if self._config.cache_entries > 0
            else None
        )
        self._routes = self._compile_routes()
        self._stage_totals = dict.fromkeys(_STAGES, 0.0)
        self._stage_counts = dict.fromkeys(_STAGES, 0)
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._in_flight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._started = time.monotonic()

    def _compile_routes(self) -> RouteTrie:
        """The top-level route table, compiled once at construction."""
        routes = RouteTrie()
        # Ops routes accept any verb (parity with the historic
        # string-compare dispatch, which never looked at the method).
        routes.add("*", "/healthz", self._route_healthz)
        routes.add("*", "/metrics", self._route_metrics)
        routes.add("POST", "/graph", self._route_graph)
        routes.add("*", "/v1/{resource...}", self._route_rest)
        return routes

    def set_world_version(self, world_version: str) -> None:
        """Adopt a new world digest (drops every cached response)."""
        if self._cache is not None:
            self._cache.set_world_version(world_version)

    def _stage_add(self, stage: str, seconds: float) -> None:
        # Plain-float accumulation: the per-request cost of full
        # histogram observation would rival the stages being measured.
        # Totals surface as gauges when /metrics snapshots.
        self._stage_totals[stage] += seconds
        self._stage_counts[stage] += 1

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        if self._server is None:
            raise ApiError("gateway not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ApiError("gateway already started")
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self._config.host,
            port=self._config.port,
            reuse_port=self._config.reuse_port or None,
        )

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, then close.

        Connections idle in keep-alive are closed immediately; requests
        already dispatched get up to ``drain_timeout`` seconds to finish
        before their connections are cancelled.
        """
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self._config.drain_timeout)
        except asyncio.TimeoutError:
            logger.warning(
                "drain timeout: cancelling %d connection(s) with work in flight",
                len(self._connections),
            )
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._server = None

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        if self._draining or len(self._connections) >= self._config.max_connections:
            # Load shedding happens before any read: the cheapest
            # possible rejection, with a hint for the client's backoff.
            get_registry().inc("gateway_rejections", reason="overload")
            with contextlib.suppress(ConnectionError):
                await self._write_response(
                    writer,
                    WireReply(
                        503,
                        encode_error_body(
                            "gateway at connection capacity",
                            code=2,
                            api_type="TransientError",
                            retry_after=self._config.retry_after_hint,
                        ),
                    ),
                    close=True,
                )
            await self._close_writer(writer)
            return
        self._connections.add(task)
        get_registry().set_gauge("gateway_connections", len(self._connections))
        try:
            await self._connection_loop(reader, writer)
        except (asyncio.CancelledError, asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            self._connections.discard(task)
            get_registry().set_gauge("gateway_connections", len(self._connections))
            await self._close_writer(writer)

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self._draining:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"),
                    timeout=self._config.keepalive_timeout,
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                return  # idle keep-alive expiry, or clean client close
            except asyncio.LimitOverrunError:
                get_registry().inc("gateway_rejections", reason="body")
                await self._write_response(
                    writer,
                    WireReply(400, encode_error_body("request head too large", code=100)),
                    close=True,
                )
                return
            try:
                method, target, headers = _parse_head(head)
            except ApiError as exc:
                get_registry().inc("gateway_rejections", reason="body")
                await self._write_response(
                    writer,
                    WireReply(400, encode_error_body(str(exc), code=exc.code)),
                    close=True,
                )
                return
            # Honour the client's X-Request-Id or assign one; every
            # response from here on echoes it back.  Values are capped —
            # an id is a join key, not a payload channel (header values
            # cannot smuggle CRLF: _parse_head consumed the delimiters).
            request_id = (headers.get("x-request-id") or _new_request_id())[:128]
            try:
                body = await self._read_body(reader, headers)
            except ApiError as exc:
                get_registry().inc("gateway_rejections", reason="body")
                await self._write_response(
                    writer,
                    WireReply(400, encode_error_body(str(exc), code=exc.code)),
                    close=True,
                    request_id=request_id,
                )
                return
            reply = self._dispatch(method, target, headers, body, request_id=request_id)
            keep_open = not self._draining and reply.status < 500
            await self._write_response(
                writer, reply, close=not keep_open, request_id=request_id
            )
            if not keep_open:
                return

    async def _read_body(self, reader: asyncio.StreamReader, headers: dict[str, str]) -> bytes:
        raw_length = headers.get("content-length")
        if raw_length is None:
            return b""
        # The declared length is validated against the limit *before* a
        # single body byte is read — an oversized upload is rejected at
        # the head, never buffered then bounced.
        length = parse_content_length(raw_length, limit=self._config.max_body_bytes)
        if length == 0:
            return b""
        if length <= _BODY_CHUNK:
            return await reader.readexactly(length)
        # Large (but in-limit) bodies arrive in bounded chunks so the
        # stream buffer holds at most one chunk beyond what is consumed,
        # instead of readexactly staging the whole body a second time.
        chunks: list[bytes] = []
        remaining = length
        while remaining > 0:
            chunk = await reader.read(min(_BODY_CHUNK, remaining))
            if not chunk:
                raise asyncio.IncompleteReadError(b"".join(chunks), length)
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        reply: WireReply,
        *,
        close: bool,
        request_id: str | None = None,
    ) -> None:
        extra = "".join(f"{name}: {value}\r\n" for name, value in reply.headers)
        request_id_header = f"X-Request-Id: {request_id}\r\n" if request_id else ""
        head = (
            f"HTTP/1.1 {reply.status} {_REASONS.get(reply.status, 'OK')}\r\n"
            f"Content-Type: {reply.content_type}\r\n"
            f"Content-Length: {len(reply.body)}\r\n"
            f"{extra}"
            f"{request_id_header}"
            f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + reply.body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            # Client hung up mid-response; its retry machinery recovers.
            logger.debug("client disconnected during response")
            raise ConnectionResetError

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(ConnectionError, BrokenPipeError):
            writer.close()
            await writer.wait_closed()

    # -- request dispatch ----------------------------------------------------

    def _dispatch(
        self,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
        request_id: str | None = None,
    ) -> WireReply:
        """Route one parsed HTTP request through the compiled trie."""
        started = time.perf_counter()
        path, _, query = target.partition("?")
        with get_tracer().span("api.route"):
            match = self._routes.match(method, path)
        self._stage_add("route", time.perf_counter() - started)
        if match is None:
            return WireReply(
                404, encode_error_body(f"no route for {method} {path}", code=100)
            )
        handler, captures = match
        return handler(
            method=method,
            query=query,
            headers=headers,
            body=body,
            request_id=request_id,
            **captures,
        )

    def _route_healthz(self, *, method: str, query: str, headers, body, request_id) -> WireReply:
        payload: dict[str, Any] = {
            "status": "draining" if self._draining else "ok",
            "pid": os.getpid(),
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "connections": len(self._connections),
            # pid/uptime/connections describe *this* worker only; the
            # cluster section (when present) is the cross-worker truth.
            "scope": "worker",
        }
        if self._telemetry_reader is not None:
            payload["cluster"] = self._telemetry_reader.cluster_health()
        return WireReply(200, encode_obj(payload))

    def _route_metrics(self, *, method: str, query: str, headers, body, request_id) -> WireReply:
        """``GET /metrics``: merged cluster view (or worker-local when no
        telemetry block is attached), as JSON or Prometheus text."""
        # Snapshot time is when the hot path's plain-float stage
        # accumulators become visible as gauges (and flow to the
        # telemetry sink) — scraping pays the registry cost, requests
        # never do.
        self._flush_stage_gauges()
        if self._telemetry_reader is not None:
            snapshot = self._telemetry_reader.merged_snapshot()
            scope = "cluster"
        else:
            snapshot = get_registry().snapshot()
            scope = "worker"
        params = urllib.parse.parse_qs(query)
        if params.get("format", ["json"])[-1] == "prometheus":
            return WireReply(
                200,
                render_prometheus(snapshot).encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        snapshot["scope"] = scope
        return WireReply(200, encode_obj(snapshot))

    def _flush_stage_gauges(self) -> None:
        registry = get_registry()
        for stage in _STAGES:
            registry.set_gauge(
                "gateway_stage_seconds_total", self._stage_totals[stage], stage=stage
            )
            registry.set_gauge(
                "gateway_stage_requests", float(self._stage_counts[stage]), stage=stage
            )
        if self._cache is not None:
            for key, value in self._cache.stats().items():
                registry.set_gauge("gateway_cache", float(value), result=key)

    def _route_graph(self, *, method: str, query: str, headers, body, request_id) -> WireReply:
        """The envelope endpoint: body is one serialised ApiRequest."""
        started = time.perf_counter()
        tracer = get_tracer()
        try:
            with tracer.span("api.decode"):
                request = ApiRequest.from_json(body.decode("utf-8"))
        except (ApiError, UnicodeDecodeError) as exc:
            get_registry().inc("gateway_rejections", reason="body")
            return WireReply(
                400,
                encode_envelope(
                    ApiResponse.failure(ApiError(str(exc), code=100), status=400)
                ),
            )
        finally:
            self._stage_add("decode", time.perf_counter() - started)
        # The envelope wire format nests {status, body}; the HTTP status
        # mirrors the envelope's so curl and middleboxes see the truth.
        return self._handle_request(request, request_id, None, envelope=True)

    def _route_rest(
        self, *, method: str, query: str, headers, body, request_id, resource: str
    ) -> WireReply:
        """The route-per-resource surface: ``/v1/<graph path>``."""
        started = time.perf_counter()
        with get_tracer().span("api.decode"):
            try:
                http_method = HttpMethod(method)
            except ValueError:
                self._stage_add("decode", time.perf_counter() - started)
                return WireReply(
                    404, encode_error_body(f"unsupported method {method}", code=100)
                )
            token = _bearer_token(headers)
            if body:
                try:
                    params = json.loads(body)
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    get_registry().inc("gateway_rejections", reason="body")
                    self._stage_add("decode", time.perf_counter() - started)
                    return WireReply(
                        400, encode_error_body(f"malformed JSON body: {exc}", code=100)
                    )
                if not isinstance(params, dict):
                    get_registry().inc("gateway_rejections", reason="body")
                    self._stage_add("decode", time.perf_counter() - started)
                    return WireReply(
                        400, encode_error_body("JSON body must be an object", code=100)
                    )
            else:
                params = {
                    name: _decode_query_value(values[-1])
                    for name, values in urllib.parse.parse_qs(query).items()
                }
            try:
                request = ApiRequest(
                    method=http_method,
                    path="/" + resource,
                    params=params,
                    access_token=token,
                )
            except ValidationError as exc:
                # A request shape the protocol layer rejects (bad path, bad
                # params) is the client's fault, same bucket as bad JSON.
                get_registry().inc("gateway_rejections", reason="body")
                self._stage_add("decode", time.perf_counter() - started)
                return WireReply(400, encode_error_body(str(exc), code=100))
        self._stage_add("decode", time.perf_counter() - started)
        return self._handle_request(
            request, request_id, headers.get("if-none-match"), envelope=False
        )

    def _handle_request(
        self,
        request: ApiRequest,
        request_id: str | None,
        if_none_match: str | None,
        *,
        envelope: bool,
    ) -> WireReply:
        """Auth + throttle + cache + trace around the wrapped handler."""
        endpoint = endpoint_key(request.method, request.path)
        registry = get_registry()
        tracer = get_tracer()
        attrs = {"endpoint": endpoint}
        if request_id is not None:
            attrs["request_id"] = request_id
        with tracer.span("api.request", attrs) as span:
            started = time.perf_counter()
            rejection = self._auth_and_throttle(request)
            if rejection is not None:
                payload = (
                    encode_envelope(rejection) if envelope else encode_rest(rejection)
                )
                reply = WireReply(rejection.status, payload)
            elif envelope:
                response = self._invoke_handler(request, request_id, tracer)
                if (
                    self._cache is not None
                    and request.method is not HttpMethod.GET
                    and response.ok
                ):
                    self._cache.invalidate()
                encode_started = time.perf_counter()
                with tracer.span("api.encode"):
                    payload = encode_envelope(response)
                self._stage_add("encode", time.perf_counter() - encode_started)
                reply = WireReply(response.status, payload)
            else:
                reply = self._rest_reply(request, request_id, if_none_match, tracer)
            span.set("status", reply.status)
            registry.inc("gateway_requests", endpoint=endpoint, status=reply.status)
            registry.observe(
                "gateway_request_seconds",
                time.perf_counter() - started,
                endpoint=endpoint,
            )
        return reply

    def _rest_reply(
        self,
        request: ApiRequest,
        request_id: str | None,
        if_none_match: str | None,
        tracer,
    ) -> WireReply:
        """Serve one admitted REST request: cache, or handler + encode."""
        cache = self._cache
        cacheable = cache is not None and request.method is HttpMethod.GET
        key = None
        if cacheable:
            started = time.perf_counter()
            with tracer.span("api.cache"):
                key = (request.path, canonical_params(request.params))
                entry = cache.lookup(key)
            self._stage_add("cache", time.perf_counter() - started)
            if entry is not None:
                if if_none_match and etag_matches(if_none_match, entry.etag):
                    cache.revalidations += 1
                    return WireReply(304, b"", headers=(("ETag", entry.etag),))
                return WireReply(
                    entry.status,
                    entry.body,
                    headers=(("ETag", entry.etag), ("X-Cache", "hit")),
                )
        response = self._invoke_handler(request, request_id, tracer)
        started = time.perf_counter()
        with tracer.span("api.encode"):
            payload = encode_rest(response)
        self._stage_add("encode", time.perf_counter() - started)
        if cacheable and response.status == 200:
            entry = cache.store(key, 200, payload)
            if if_none_match and etag_matches(if_none_match, entry.etag):
                # Revalidation against a fresh body: the client's copy is
                # still byte-exact (a stale validator falls through to
                # the full 200 below).
                cache.revalidations += 1
                return WireReply(304, b"", headers=(("ETag", entry.etag),))
            return WireReply(
                200, payload, headers=(("ETag", entry.etag), ("X-Cache", "miss"))
            )
        if cache is not None and request.method is not HttpMethod.GET and response.ok:
            # A successful mutation may change any cached GET's body;
            # mutable API state carries no finer dependency tracking.
            cache.invalidate()
        return WireReply(response.status, payload)

    def _invoke_handler(
        self, request: ApiRequest, request_id: str | None, tracer
    ) -> ApiResponse:
        self._in_flight += 1
        self._idle.clear()
        started = time.perf_counter()
        try:
            # bind() stamps the id onto every span finishing in
            # the handler — the server's own api.request span and
            # the delivery-engine spans under it — so journal
            # lines join to this request without plumbing the id
            # through every call signature.
            with tracer.bind(**({"request_id": request_id} if request_id else {})):
                return self._handler(request)
        except ApiError as exc:
            return ApiResponse.failure(exc, status=500)
        except Exception:  # noqa: BLE001 - the world must not kill the loop
            logger.exception("handler crashed for %s", request.path)
            return ApiResponse.failure(
                ApiError("internal gateway error", code=2, api_type="TransientError"),
                status=500,
            )
        finally:
            self._stage_add("handler", time.perf_counter() - started)
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()

    def _request_cost(self, request: ApiRequest) -> float:
        if (
            self._config.rate_cost_deliver != 1.0
            and request.method is HttpMethod.POST
            and request.path.endswith("/deliver")
        ):
            return self._config.rate_cost_deliver
        return 1.0

    def _auth_and_throttle(self, request: ApiRequest) -> ApiResponse | None:
        """Gateway-level auth and rate limiting; ``None`` admits."""
        token = request.access_token
        if token not in self._tokens:
            get_registry().inc("gateway_rejections", reason="auth")
            return ApiResponse.failure(
                ApiError("invalid access token", code=190), status=401
            )
        cost = self._request_cost(request)
        plane = self._rate_plane
        if plane is not None and plane.covers(token):
            # Cluster mode: the budget lives in shared memory, enforced
            # across every SO_REUSEPORT worker.
            if not plane.try_acquire(token, cost):
                get_registry().inc("gateway_rejections", reason="rate_limit")
                return ApiResponse.failure(
                    ApiError(
                        "request limit reached", code=4, api_type="RateLimitError"
                    ),
                    status=429,
                    retry_after=plane.seconds_until_available(token, cost),
                )
            return None
        bucket = self._buckets.get(token)
        if bucket is None:
            bucket = self._buckets[token] = TokenBucket(
                self._config.rate_capacity,
                self._config.rate_refill_per_second,
                self._clock,
            )
        if not bucket.try_acquire(cost):
            get_registry().inc("gateway_rejections", reason="rate_limit")
            return ApiResponse.failure(
                ApiError(
                    "request limit reached", code=4, api_type="RateLimitError"
                ),
                status=429,
                # The wait for the *requested* cost: a denied burst told
                # to retry after the one-token wait would be denied again
                # by construction.
                retry_after=bucket.seconds_until_available(cost),
            )
        return None


def _new_request_id() -> str:
    """A fresh request id (uuid4 hex; opaque, collision-safe)."""
    return uuid.uuid4().hex


def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
    """Parse a raw request head into (method, target, lowercase headers)."""
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ApiError(f"malformed request line: {exc}", code=100) from exc
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ApiError(f"malformed header line {line!r}", code=100)
        headers[name.strip().lower()] = value.strip()
    return method, target, headers


def _bearer_token(headers: dict[str, str]) -> str | None:
    auth = headers.get("authorization", "")
    scheme, _, credentials = auth.partition(" ")
    if scheme.lower() == "bearer" and credentials:
        return credentials.strip()
    return None


# ---------------------------------------------------------------------------
# Synchronous wrapper


class GatewayServer:
    """Run one :class:`AsyncGateway` on a background event-loop thread.

    The synchronous face of the gateway for tests and embedders::

        with GatewayServer(server.handle, {token}) as gw:
            client = MarketingApiClient(rest_transport("127.0.0.1", gw.port), token)
    """

    def __init__(
        self,
        handler: Callable[[ApiRequest], ApiResponse],
        access_tokens: set[str],
        config: GatewayConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        world_version: str = "",
    ) -> None:
        self._gateway = AsyncGateway(
            handler, access_tokens, config, clock=clock, world_version=world_version
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self._gateway.port

    def start(self) -> None:
        if self._thread is not None:
            raise ApiError("gateway already started")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
            raise ApiError(f"gateway failed to start: {self._startup_error}")
        if self._loop is None:
            raise ApiError("gateway failed to start (timeout)")

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._gateway.start())
        except BaseException as exc:  # bind failure, bad config
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._loop = loop
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        """Drain gracefully, then stop the loop thread."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._gateway.stop(), loop)
        with contextlib.suppress(Exception):
            future.result(timeout=self._gateway._config.drain_timeout + 5.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "GatewayServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Multi-process cluster over a shared-memory universe


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned gateway worker needs (picklable).

    The universe travels as a shared-memory manifest (kilobytes), the
    trained EAR as its weight arrays (also kilobytes); the remaining
    models are rebuilt from the world config's named seed streams —
    exactly how :class:`~repro.core.world.SimulatedWorld` builds them,
    so a worker's world is the parent's world minus the mutable state.
    """

    manifest_json: str
    world: Any  # WorldConfig (kept untyped to avoid a core->api import cycle)
    ear_arrays: dict[str, Any] | None  # None -> oracle EAR over engagement
    gateway: GatewayConfig
    #: Ad accounts to provision in every worker (account state is
    #: worker-local; pre-registering keeps the shards interchangeable).
    accounts: tuple[str, ...] = ()
    #: JSON manifest of the cluster's shared telemetry block (None when
    #: the cluster runs without the shared metrics plane).
    telemetry_json: str | None = None
    #: JSON manifest of the cluster's shared rate-limit plane (None ->
    #: each worker throttles with its own local buckets).
    ratelimit_json: str | None = None
    #: This worker's slot index in the telemetry and rate-limit blocks.
    worker_index: int = 0


def _build_worker_server(spec: WorkerSpec, universe) -> Any:
    """Build a :class:`MarketingApiServer` over an attached universe."""
    from repro.api.server import MarketingApiServer
    from repro.geo.mobility import MobilityModel
    from repro.platform.competition import CompetitionModel
    from repro.platform.ear import EarModel, OracleEar
    from repro.platform.engagement import EngagementModel
    from repro.rng import SeedSequenceFactory

    from repro.platform.campaign import AdAccount

    config = spec.world
    rngs = SeedSequenceFactory(config.seed)
    engagement = EngagementModel(config.engagement_params)
    if spec.ear_arrays is not None:
        ear = EarModel.from_arrays(spec.ear_arrays)
    else:
        ear = OracleEar(engagement)
    server = MarketingApiServer(
        universe,
        ear=ear,
        engagement=engagement,
        competition=CompetitionModel(
            rngs.get("competition"), base_price=config.competition_base_price
        ),
        mobility=MobilityModel(rngs.get("mobility")),
        rng=rngs.get("delivery"),
        access_tokens={config.access_token},
        advertiser_bid=config.advertiser_bid,
        value_noise_sigma=config.value_noise_sigma,
        delivery_mode=config.delivery_mode,
        delivery_workers=config.delivery_workers,
    )
    for account_id in spec.accounts:
        server.register_account(AdAccount(account_id=account_id))
    return server


def _worker_main(spec: WorkerSpec, ready_queue) -> None:
    """Entry point of one spawned gateway worker."""
    from repro.cache.fingerprint import world_fingerprint
    from repro.population.shm import attach

    # A terminal Ctrl-C signals the whole process group; shutdown is the
    # parent's job (it SIGTERMs every worker), so a worker reacting to
    # SIGINT on its own would race the orchestrated drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    attached = attach(spec.manifest_json)
    sink: SharedSink | None = None
    reader: TelemetryReader | None = None
    rate_plane: SharedRateLimiter | None = None
    try:
        if spec.telemetry_json is not None:
            # Attach the shared metrics plane *before* building the
            # server so every series — including startup-time ones —
            # mirrors into this worker's slot; set_sink flushes whatever
            # was recorded even earlier.
            sink = SharedSink.attach(spec.telemetry_json, spec.worker_index)
            get_registry().set_sink(sink)
            reader = TelemetryReader.attach(spec.telemetry_json)
        if spec.ratelimit_json is not None:
            rate_plane = SharedRateLimiter.attach(
                spec.ratelimit_json, spec.worker_index
            )
        server = _build_worker_server(spec, attached.universe)
        gateway = AsyncGateway(
            server.handle,
            {spec.world.access_token},
            spec.gateway,
            telemetry_reader=reader,
            rate_plane=rate_plane,
            # Response-cache scope: bodies computed against this world
            # digest must never outlive it.
            world_version=world_fingerprint(spec.world),
        )

        async def heartbeat() -> None:
            while True:
                sink.heartbeat()
                await asyncio.sleep(HEARTBEAT_INTERVAL)

        async def main() -> None:
            await gateway.start()
            beat = asyncio.create_task(heartbeat()) if sink is not None else None
            ready_queue.put({"pid": os.getpid(), "port": gateway.port})
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            loop.add_signal_handler(signal.SIGTERM, stop.set)
            await stop.wait()
            if beat is not None:
                beat.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await beat
            await gateway.stop()

        asyncio.run(main())
    except Exception as exc:  # surface startup failures to the parent
        ready_queue.put({"pid": os.getpid(), "error": f"{type(exc).__name__}: {exc}"})
        raise
    finally:
        get_registry().set_sink(None)
        if reader is not None:
            reader.close()
        if sink is not None:
            sink.close()
        if rate_plane is not None:
            rate_plane.close()
        # The server still holds column views at this point, so the
        # mapping cannot be released cleanly; the process is exiting
        # and the OS unmaps it anyway.
        with contextlib.suppress(BufferError):
            attached.close()


class GatewayCluster:
    """N gateway workers over one shared universe and one TCP port.

    The parent copies the universe's columns (and PII index) into a
    :class:`~repro.population.shm.SharedUniverse` block once; each
    ``spawn``-context worker attaches zero-copy and binds the same port
    with ``SO_REUSEPORT`` (the kernel balances connections across
    workers).  ``spawn`` is deliberate — a forked worker would share
    pages copy-on-write and hide any accidental private copy.

    Parameters
    ----------
    universe:
        The built :class:`~repro.population.universe.UserUniverse`.
    world_config:
        The :class:`~repro.core.world.WorldConfig` the workers rebuild
        their models from (seeds, engagement params, token).
    ear:
        The trained EAR (:class:`~repro.platform.ear.EarModel` ships its
        weights; :class:`~repro.platform.ear.OracleEar` is rebuilt from
        the engagement model).
    workers:
        Process count (>= 1).
    gateway:
        Per-worker limits; ``port=0`` lets the cluster reserve one.
    telemetry:
        Share one metrics block across the workers (default on).  Each
        worker mirrors its registry into a private slot; ``/metrics`` on
        any worker then serves the merged cluster view.  Off, metrics
        revert to worker-local snapshots.
    shared_rate_limit:
        Enforce one cluster-wide token budget per access token through a
        shared-memory rate plane (default on).  Off, each worker
        throttles with its own local buckets — the historic behaviour,
        where the effective budget multiplied by however many workers a
        client's connections landed on.
    """

    def __init__(
        self,
        universe,
        world_config,
        ear,
        *,
        workers: int = 2,
        gateway: GatewayConfig | None = None,
        accounts: tuple[str, ...] = (),
        telemetry: bool = True,
        shared_rate_limit: bool = True,
    ) -> None:
        from repro.platform.ear import EarModel

        if workers < 1:
            raise ValidationError("workers must be >= 1")
        self._universe = universe
        self._world_config = world_config
        self._ear_arrays = ear.to_arrays() if isinstance(ear, EarModel) else None
        self._n_workers = workers
        self._gateway_config = gateway or GatewayConfig()
        self._accounts = tuple(accounts)
        self._telemetry_enabled = telemetry
        self._telemetry: TelemetryBlock | None = None
        self._rate_limit_enabled = shared_rate_limit
        self._rate_plane: SharedRateLimiter | None = None
        self._shared = None
        self._processes: list[Any] = []
        self._reservation: socket.socket | None = None
        self._port: int | None = None

    @property
    def port(self) -> int:
        if self._port is None:
            raise ApiError("cluster not started")
        return self._port

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of live workers (for memory accounting in benchmarks)."""
        return [p.pid for p in self._processes if p.is_alive()]

    @property
    def shared_nbytes(self) -> int:
        """Size of the shared universe block in bytes."""
        if self._shared is None:
            raise ApiError("cluster not started")
        return self._shared.nbytes

    @property
    def shared_name(self) -> str:
        """OS name of the shared block (its ``/dev/shm`` mapping path).

        Benchmarks use this to find the block in a worker's
        ``/proc/<pid>/smaps`` and assert the mapping stays shared.
        """
        if self._shared is None:
            raise ApiError("cluster not started")
        return self._shared.name

    def telemetry_reader(self) -> TelemetryReader:
        """A parent-side reader over the cluster's telemetry block.

        The same merged view the workers serve at ``/metrics`` without a
        round-trip (benchmarks and tests read it directly).
        """
        if self._telemetry is None:
            raise ApiError("cluster telemetry is disabled or not started")
        return self._telemetry.reader()

    def _reserve_port(self) -> int:
        """Hold a bound (not listening) SO_REUSEPORT socket on the port.

        Binding without listening reserves the number for the cluster's
        lifetime — workers bind the same port with ``SO_REUSEPORT`` and,
        because only *listening* sockets receive connections, the
        reservation never steals traffic.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self._gateway_config.host, self._gateway_config.port))
        self._reservation = sock
        return sock.getsockname()[1]

    def start(self, *, timeout: float = 120.0) -> None:
        """Share the universe, spawn workers, wait until all are serving."""
        import multiprocessing

        from repro.population.shm import SharedUniverse

        if self._processes:
            raise ApiError("cluster already started")
        self._port = self._reserve_port()
        self._shared = SharedUniverse.create(self._universe)
        if self._telemetry_enabled:
            self._telemetry = TelemetryBlock.create(self._n_workers)
        if self._rate_limit_enabled:
            self._rate_plane = SharedRateLimiter.create(
                [self._world_config.access_token],
                capacity=self._gateway_config.rate_capacity,
                refill_per_second=self._gateway_config.rate_refill_per_second,
                n_workers=self._n_workers,
            )
        ctx = multiprocessing.get_context("spawn")
        ready: Any = ctx.Queue()
        spec = WorkerSpec(
            manifest_json=self._shared.manifest.to_json(),
            world=self._world_config,
            ear_arrays=self._ear_arrays,
            # reuse_port is unconditional: the parent's reservation
            # socket already holds the port with SO_REUSEPORT, so even a
            # single worker must opt in to share the bind with it.
            gateway=replace(self._gateway_config, port=self._port, reuse_port=True),
            accounts=self._accounts,
            telemetry_json=(
                None if self._telemetry is None else self._telemetry.manifest.to_json()
            ),
            ratelimit_json=(
                None if self._rate_plane is None else self._rate_plane.manifest.to_json()
            ),
        )
        try:
            for index in range(self._n_workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(replace(spec, worker_index=index), ready),
                    daemon=True,
                )
                proc.start()
                self._processes.append(proc)
            deadline = time.monotonic() + timeout
            for _ in range(self._n_workers):
                remaining = max(0.1, deadline - time.monotonic())
                status = ready.get(timeout=remaining)
                if "error" in status:
                    raise ApiError(f"worker failed to start: {status['error']}")
        except BaseException:
            self.stop()
            raise

    def stop(self) -> None:
        """SIGTERM every worker (graceful drain), reap, release the block."""
        for proc in self._processes:
            if proc.is_alive():
                proc.terminate()  # SIGTERM -> worker drains and exits
        for proc in self._processes:
            proc.join(timeout=self._gateway_config.drain_timeout + 10.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self._processes = []
        if self._telemetry is not None:
            self._telemetry.unlink()
            self._telemetry = None
        if self._rate_plane is not None:
            self._rate_plane.unlink()
            self._rate_plane = None
        if self._shared is not None:
            self._shared.unlink()
            self._shared = None
        if self._reservation is not None:
            self._reservation.close()
            self._reservation = None
        self._port = None

    def __enter__(self) -> "GatewayCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# REST client transport


class _RestTransport(_KeepAliveTransport):
    """Keep-alive transport speaking the gateway's REST surface.

    Params always travel as a JSON body (the gateway accepts a body on
    any verb), so typed values survive without query-string encoding.

    GET responses carrying an ``ETag`` are remembered (a small LRU of
    parsed envelopes); repeats of the same GET send ``If-None-Match``
    and a ``304`` resolves from the local copy without a response body
    crossing the wire.  Strong validators make this exact: a 304 means
    the cached body is byte-identical to what a 200 would have carried.
    """

    _ETAG_CACHE_ENTRIES = 64

    def __init__(self, host: str, port: int, timeout: float) -> None:
        super().__init__(host, port, timeout)
        self._etag_cache: "OrderedDict[tuple[str, str], tuple[str, ApiResponse]]" = (
            OrderedDict()
        )

    def _cache_key(self, request: ApiRequest) -> tuple[str, str]:
        return (request.path, canonical_params(request.params))

    def _wire(self, request: ApiRequest) -> tuple[str, str, str, dict[str, str]]:
        headers = {"Content-Type": "application/json"}
        if request.access_token:
            headers["Authorization"] = f"Bearer {request.access_token}"
        return (
            request.method.value,
            "/v1" + request.path,
            json.dumps(request.params),
            headers,
        )

    def _request_headers(self, request: ApiRequest, headers: dict[str, str]) -> dict[str, str]:
        if request.method is HttpMethod.GET:
            cached = self._etag_cache.get(self._cache_key(request))
            if cached is not None:
                headers["If-None-Match"] = cached[0]
        return headers

    def _handle_response(self, request, response, raw: str) -> ApiResponse:
        if response.status == 304:
            cached = self._etag_cache.get(self._cache_key(request))
            if cached is None:
                # A 304 we never asked for; retry fetches the full body.
                raise ApiError(
                    "304 without a cached response", code=2, api_type="TransientError"
                )
            return cached[1]
        parsed = self._parse(response.status, raw)
        if request.method is HttpMethod.GET and response.status == 200:
            etag = response.getheader("ETag")
            if etag:
                key = self._cache_key(request)
                self._etag_cache[key] = (etag, parsed)
                self._etag_cache.move_to_end(key)
                while len(self._etag_cache) > self._ETAG_CACHE_ENTRIES:
                    self._etag_cache.popitem(last=False)
        return parsed

    def _parse(self, status: int, raw: str) -> ApiResponse:
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(f"malformed response body: {exc}", code=100) from exc
        retry_after = body.get("retry_after")
        return ApiResponse(
            status=status,
            data=body.get("data"),
            error=body.get("error"),
            paging=body.get("paging"),
            retry_after=None if retry_after is None else float(retry_after),
        )


def rest_transport(host: str, port: int, *, timeout: float = 30.0) -> _RestTransport:
    """A client transport for the gateway's ``/v1`` REST surface.

    Compatible with :class:`~repro.api.client.MarketingApiClient`;
    reuses one keep-alive connection (which also pins the client to one
    cluster worker — the affinity contract in the module docstring).
    """
    return _RestTransport(host, port, timeout)
