"""Benchmark the population core: registry synthesis and universe builds.

Times every expensive stage of world construction and appends one JSON
record **per stage and mode** to ``BENCH_universe.json`` at the repo root:

    PYTHONPATH=src python scripts/bench_universe.py           # paper scale
    PYTHONPATH=src python scripts/bench_universe.py --quick   # small scale (CI)
    PYTHONPATH=src python scripts/bench_universe.py --xl      # million-user run
    PYTHONPATH=src python scripts/bench_universe.py --xxl     # 10M-user world

Stages:

* ``registry`` — voter-registry synthesis, in ``reference`` (the original
  per-record loop), ``columnar`` (batched RNG + vectorized assembly) and
  ``warm_mmap`` (restoring a columnar snapshot from the cache's mmap
  tier) modes, with ``records_per_sec`` throughput;
* ``universe`` — cold construction in both modes, the warm snapshot
  load, and PII match throughput;
* ``world`` (``--xxl``) — a full ten-million-user ``SimulatedWorld``
  built cold through a cache, then reloaded warm via the mmap tier.

Each record carries its *own* memory measurements: ``rss_mb`` (current
resident set when the measurement finished, from ``/proc/self/status``),
``rss_delta_mb`` (growth across the measurement) and ``peak_rss_mb``
(the process lifetime high-water mark) — earlier revisions stamped one
global registry time and one final peak RSS onto every record, which
made per-stage attribution impossible.

The columnar universe build is expected to be at least 10x the reference
loop at paper scale (asserted unless ``--no-check`` or ``--quick`` — at
small scale constant overheads dominate and the ratio is noisy).  Pass
``--trace-out DIR`` to keep a traced columnar build's journal + Chrome
trace (``universe.build`` spans from :mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.cache import CODE_SALT, ArtifactCache
from repro.core.world import SimulatedWorld, WorldConfig, _ENRICHED_SHARES
from repro.geo import MobilityModel
from repro.images import ImageFeatures
from repro.obs.tracer import tracing
from repro.platform import (
    AdAccount,
    AdCreative,
    AudienceStore,
    CompetitionModel,
    DeliveryEngine,
    EarModel,
    EngagementModel,
    EngagementParams,
    Objective,
    TargetingSpec,
)
from repro.population import UserUniverse
from repro.population.activity import ActivityModel
from repro.rng import SeedSequenceFactory
from repro.types import State
from repro.voters.registry import RegistryConfig, VoterRegistry

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_universe.json"
BENCH_SEED = 7


def peak_rss_mb() -> float:
    """Lifetime peak resident set size, in MiB (Linux: ru_maxrss KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def current_rss_mb() -> float:
    """Current resident set size in MiB (``VmRSS`` from /proc).

    Unlike ``ru_maxrss`` this goes *down* when memory is released, so
    per-stage deltas are attributable; falls back to the peak on
    platforms without procfs.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return peak_rss_mb()


def _rss_fields(rss_before: float) -> dict:
    now = current_rss_mb()
    return {
        "rss_mb": round(now, 1),
        "rss_delta_mb": round(now - rss_before, 1),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def _registry_config() -> RegistryConfig:
    return RegistryConfig(race_shares=dict(_ENRICHED_SHARES))


def build_registries(config: WorldConfig, mode: str = "columnar") -> list[VoterRegistry]:
    """The two state registries a world is grown from."""
    rngs = SeedSequenceFactory(config.seed)
    registry_config = _registry_config()
    return [
        VoterRegistry(
            state, config.registry_size, rngs.get(f"registry.{state.value.lower()}"),
            config=registry_config, mode=mode,
        )
        for state in (State.FL, State.NC)
    ]


def bench_registry(config: WorldConfig, mode: str, rounds: int) -> dict:
    """Median synthesis wall time of one state registry in ``mode``."""
    registry_config = _registry_config()
    rss_before = current_rss_mb()
    times = []
    for _ in range(rounds):
        rngs = SeedSequenceFactory(config.seed)
        start = time.perf_counter()
        VoterRegistry(
            State.FL, config.registry_size, rngs.get("registry.fl"),
            config=registry_config, mode=mode,
        )
        times.append(time.perf_counter() - start)
    median_s = statistics.median(times)
    return {
        "stage": "registry",
        "mode": mode,
        "registry_build_ms": round(median_s * 1000.0, 2),
        "median_ms": round(median_s * 1000.0, 2),
        "records_per_sec": round(config.registry_size / median_s, 1),
        "n_records": config.registry_size,
        "rounds": rounds,
        **_rss_fields(rss_before),
    }


def bench_registry_warm_mmap(config: WorldConfig, rounds: int) -> dict:
    """Median warm restore of a columnar registry via the mmap cache tier."""
    rngs = SeedSequenceFactory(config.seed)
    registry = VoterRegistry(
        State.FL, config.registry_size, rngs.get("registry.fl"),
        config=_registry_config(), mode="columnar",
    )
    with tempfile.TemporaryDirectory(prefix="bench-registry-") as tmp:
        cache = ArtifactCache(tmp)
        cache.save_arrays("registry", "bench", registry.to_arrays(), mmapable=True)
        n_records = len(registry)
        del registry
        gc.collect()
        rss_before = current_rss_mb()
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            arrays = cache.load_arrays("registry", "bench")
            restored = VoterRegistry.from_arrays(arrays)
            times.append(time.perf_counter() - start)
        assert len(restored) == n_records
        median_s = statistics.median(times)
        fields = _rss_fields(rss_before)
    return {
        "stage": "registry",
        "mode": "warm_mmap",
        "registry_build_ms": round(median_s * 1000.0, 2),
        "median_ms": round(median_s * 1000.0, 2),
        "records_per_sec": round(n_records / median_s, 1),
        "n_records": n_records,
        "rounds": rounds,
        **fields,
    }


def build_universe(registries, config: WorldConfig, mode: str) -> UserUniverse:
    rngs = SeedSequenceFactory(config.seed)
    return UserUniverse(
        registries,
        rngs.get("universe"),
        activity=ActivityModel(rngs.get("activity"), base_sessions=config.sessions_per_day),
        proxy_fidelity=config.proxy_fidelity,
        mode=mode,
    )


def bench_cold(registries, config: WorldConfig, mode: str, rounds: int) -> dict:
    """Median cold-construction wall time of one universe in ``mode``."""
    rss_before = current_rss_mb()
    times = []
    universe = None
    for _ in range(rounds):
        start = time.perf_counter()
        universe = build_universe(registries, config, mode)
        times.append(time.perf_counter() - start)
    median_s = statistics.median(times)
    return {
        "stage": "universe",
        "mode": mode,
        "median_ms": round(median_s * 1000.0, 2),
        "users_per_sec": round(len(universe) / median_s, 1),
        "n_users": len(universe),
        "columns_bytes_per_user": round(universe.columns.nbytes / len(universe), 2),
        "rounds": rounds,
        **_rss_fields(rss_before),
    }


def bench_warm(universe: UserUniverse, rounds: int) -> dict:
    """Median snapshot round-trip load time (the warm cache path)."""
    arrays = universe.to_arrays()
    rss_before = current_rss_mb()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        restored = UserUniverse.from_arrays(arrays)
        times.append(time.perf_counter() - start)
    median_s = statistics.median(times)
    assert len(restored) == len(universe)
    return {
        "stage": "universe",
        "mode": "warm_load",
        "median_ms": round(median_s * 1000.0, 2),
        "users_per_sec": round(len(universe) / median_s, 1),
        "n_users": len(universe),
        "rounds": rounds,
        **_rss_fields(rss_before),
    }


def bench_matching(universe: UserUniverse, rounds: int) -> dict:
    """Custom-audience match throughput over every indexed hash."""
    columns = universe.columns
    indexed = columns.pii_hash[columns.pii_hash != b""]
    uploads = np.char.decode(indexed, "ascii").tolist()
    rss_before = current_rss_mb()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        matched = universe.matcher.match_indices(uploads)
        times.append(time.perf_counter() - start)
    median_s = statistics.median(times)
    assert len(matched) == len(uploads)
    return {
        "stage": "universe",
        "mode": "match_indices",
        "median_ms": round(median_s * 1000.0, 2),
        "hashes_per_sec": round(len(uploads) / median_s, 1),
        "n_hashes": len(uploads),
        "rounds": rounds,
        **_rss_fields(rss_before),
    }


def run_delivery_day(universe: UserUniverse, seed: int, n_ads: int = 4) -> dict:
    """One broad-targeting vectorized delivery day (the xl serving guard)."""
    store = AudienceStore(universe)
    account = AdAccount(account_id="bench-universe")
    campaign = account.create_campaign("c", Objective.TRAFFIC)
    ads = []
    # An empty spec is rejected ("selects everyone"); the wide age bound
    # keeps the day effectively broad while satisfying the platform.
    targeting = TargetingSpec(age_min=18, age_max=120)
    for i in range(n_ads):
        adset = account.create_adset(campaign, f"as{i}", 300, targeting)
        creative = AdCreative(
            headline="h",
            body="b",
            destination_url="https://x.org",
            image=ImageFeatures(
                race_score=0.9 if i % 2 else 0.1, gender_score=0.5, age_years=30.0
            ),
        )
        ad = account.create_ad(adset, f"ad{i}", creative)
        ad.review_status = "APPROVED"
        ads.append(ad)
    params = EngagementParams()
    engine = DeliveryEngine(
        universe,
        store,
        account,
        ear=EarModel.constant(params.base_rate),
        engagement=EngagementModel(params),
        competition=CompetitionModel(np.random.default_rng(seed + 1)),
        mobility=MobilityModel(np.random.default_rng(seed + 2)),
        rng=np.random.default_rng(seed + 3),
        mode="vectorized",
    )
    rss_before = current_rss_mb()
    start = time.perf_counter()
    result = engine.run(ads)
    seconds = time.perf_counter() - start
    return {
        "stage": "delivery",
        "mode": "xl_delivery_day",
        "median_ms": round(seconds * 1000.0, 2),
        "slots": result.total_slots,
        "slots_per_sec": round(result.total_slots / seconds, 1),
        "impressions": result.insights.total_impressions(),
        "n_ads": n_ads,
        "rounds": 1,
        **_rss_fields(rss_before),
    }


def bench_xxl_world(seed: int) -> list[dict]:
    """Cold-build then warm-reload the 10M-user world through the mmap tier.

    No delivery day at this scale — the record of interest is the warm
    reload's resident footprint: registry and universe snapshots come
    back as read-only memmaps, so ``rss_delta_mb`` should sit far below
    the hundreds of MiB the columns occupy on disk.
    """
    config = WorldConfig.xxl(seed)
    records: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench-xxl-") as tmp:
        common = {
            "world": "xxl",
            "seed": seed,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        rss_before = current_rss_mb()
        start = time.perf_counter()
        world = SimulatedWorld(config, cache=tmp)
        cold_s = time.perf_counter() - start
        n_users = len(world.universe)
        records.append({
            "stage": "world",
            "mode": "xxl_cold",
            "median_ms": round(cold_s * 1000.0, 2),
            "n_users": n_users,
            "rounds": 1,
            **_rss_fields(rss_before),
            **common,
        })
        print(
            f"xxl cold world: {n_users} users in {cold_s:.1f}s "
            f"(RSS {records[-1]['rss_mb']:.0f} MiB)",
            flush=True,
        )
        del world
        gc.collect()
        rss_before = current_rss_mb()
        start = time.perf_counter()
        world = SimulatedWorld(config, cache=tmp)
        warm_s = time.perf_counter() - start
        assert len(world.universe) == n_users
        records.append({
            "stage": "world",
            "mode": "xxl_warm_mmap",
            "median_ms": round(warm_s * 1000.0, 2),
            "n_users": n_users,
            "rounds": 1,
            **_rss_fields(rss_before),
            **common,
        })
        print(
            f"xxl warm world: reloaded in {warm_s:.1f}s "
            f"(RSS +{records[-1]['rss_delta_mb']:.0f} MiB over baseline)",
            flush=True,
        )
        del world
        gc.collect()
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rounds", type=int, default=3, help="runs per mode (median)")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick", action="store_true", help="small test scale, no speedup assertion (CI)"
    )
    scale.add_argument(
        "--xl", action="store_true",
        help="also build the ~1M-user universe and serve one delivery day",
    )
    scale.add_argument(
        "--xxl", action="store_true",
        help="also cold-build + warm-reload the ~10M-user world (mmap tier)",
    )
    parser.add_argument(
        "--no-check", action="store_true", help="skip the >=10x speedup assertion"
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write a traced columnar build's journal.jsonl + trace.json here",
    )
    args = parser.parse_args(argv)

    config = WorldConfig.small(args.seed) if args.quick else WorldConfig.paper(args.seed)
    scale_name = "small" if args.quick else "paper"
    records = []
    common = {
        "world": scale_name,
        "seed": args.seed,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }

    print(f"registry synthesis ({config.registry_size} records) ...", flush=True)
    registry_records = [
        bench_registry(config, "reference", 1),
        bench_registry(config, "columnar", args.rounds),
        bench_registry_warm_mmap(config, args.rounds),
    ]
    for record in registry_records:
        record.update(common)
        records.append(record)
        print(
            f"registry {record['mode']:>10}: {record['median_ms']:.1f} ms "
            f"({record['records_per_sec']:.0f} records/s)",
            flush=True,
        )
    registry_speedup = (
        registry_records[0]["median_ms"] / registry_records[1]["median_ms"]
    )
    for record in registry_records:
        record["speedup_vs_reference"] = round(
            registry_records[0]["median_ms"] / record["median_ms"], 2
        )
    print(f"registry cold speedup: {registry_speedup:.1f}x", flush=True)

    print("building both state registries (columnar) ...", flush=True)
    registries = build_registries(config)

    universe_records = []
    for mode in ("reference", "columnar"):
        rounds = 1 if mode == "reference" else args.rounds
        record = bench_cold(registries, config, mode, rounds)
        record.update(common)
        universe_records.append(record)
        records.append(record)
        print(
            f"universe {mode:>10}: {record['median_ms']:.1f} ms "
            f"({record['users_per_sec']:.0f} users/s, "
            f"{record['columns_bytes_per_user']:.1f} B/user)",
            flush=True,
        )
    reference_ms = universe_records[0]["median_ms"]
    columnar_ms = universe_records[1]["median_ms"]
    speedup = reference_ms / columnar_ms
    for record in universe_records:
        record["speedup_vs_reference"] = round(reference_ms / record["median_ms"], 2)
    print(f"universe cold speedup: {speedup:.1f}x")

    universe = build_universe(registries, config, "columnar")
    for bench in (bench_warm(universe, args.rounds), bench_matching(universe, args.rounds)):
        bench.update(common)
        records.append(bench)
        per_sec = bench.get("users_per_sec", bench.get("hashes_per_sec"))
        print(f"{bench['mode']:>13}: {bench['median_ms']:.1f} ms ({per_sec:.0f}/s)", flush=True)

    if args.xl:
        xl_config = WorldConfig.xl(args.seed)
        xl_common = {
            "world": "xl",
            "seed": args.seed,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        print(f"xl: registry synthesis ({xl_config.registry_size} records) ...", flush=True)
        for record in (
            bench_registry(xl_config, "columnar", 1),
            bench_registry_warm_mmap(xl_config, 1),
        ):
            record.update(xl_common)
            records.append(record)
            print(
                f"xl registry {record['mode']:>10}: {record['median_ms']:.1f} ms "
                f"({record['records_per_sec']:.0f} records/s)",
                flush=True,
            )
        print("xl: building both state registries ...", flush=True)
        xl_registries = build_registries(xl_config)
        xl_build = bench_cold(xl_registries, xl_config, "columnar", 1)
        xl_build.update(xl_common)
        records.append(xl_build)
        xl_universe = build_universe(xl_registries, xl_config, "columnar")
        del xl_registries
        print(
            f"xl universe: {len(xl_universe)} users in {xl_build['median_ms'] / 1000.0:.1f}s "
            f"({xl_universe.columns.nbytes / 2**20:.0f} MiB of columns)",
            flush=True,
        )
        day = run_delivery_day(xl_universe, args.seed)
        day.update(xl_common)
        records.append(day)
        print(
            f"xl delivery day: {day['median_ms'] / 1000.0:.1f}s "
            f"({day['slots']} slots, peak RSS {day['peak_rss_mb']:.0f} MiB)",
            flush=True,
        )
        del xl_universe

    if args.xxl:
        records.extend(bench_xxl_world(args.seed))

    if args.trace_out is not None:
        from repro.obs.journal import RunJournal, RunManifest, write_run_artifacts

        with tracing() as tracer:
            build_universe(registries, config, "columnar")
            spans = tracer.drain()
        out = Path(args.trace_out)
        with RunJournal(out / "journal.jsonl") as journal:
            journal.event("run", command="bench_universe", world=scale_name)
            n_spans = journal.spans(spans, pid=os.getpid(), job=0)
        manifest = RunManifest(
            command="bench_universe --trace-out",
            code_salt=CODE_SALT,
            seeds=(args.seed,),
            world_fingerprints=(),
            n_spans=n_spans,
        )
        paths = write_run_artifacts(out, manifest=manifest, journal_path=out / "journal.jsonl")
        print(f"wrote traced-build artifacts to {paths['trace'].parent}")

    existing = []
    if OUT_PATH.exists():
        existing = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    existing.extend(records)
    OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")
    print(f"appended {len(records)} records to {OUT_PATH}")

    if not args.no_check and not args.quick and speedup < 10.0:
        print("FAIL: columnar build is less than 10x the reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
