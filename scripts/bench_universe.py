"""Benchmark the population core: columnar vs reference universe builds.

Times cold universe construction in both modes over freshly generated
registries, the warm ``from_arrays`` snapshot load, and PII match
throughput, and appends one JSON record per measurement to
``BENCH_universe.json`` at the repo root:

    PYTHONPATH=src python scripts/bench_universe.py           # paper scale
    PYTHONPATH=src python scripts/bench_universe.py --quick   # small scale (CI)
    PYTHONPATH=src python scripts/bench_universe.py --xl      # million-user run

Cold construction excludes registry generation (a scalar pass both modes
share, timed separately as ``registry_build_ms``).  The columnar build is
expected to be at least 10x the reference loop at paper scale (asserted
unless ``--no-check`` or ``--quick`` — at small scale constant overheads
dominate and the ratio is noisy).

``--xl`` additionally builds the ≈1M-user universe (columnar only — the
reference loop would take minutes) and serves one full vectorized
delivery day over it, recording peak RSS as the memory-exhaustion guard.
Pass ``--trace-out DIR`` to keep a traced columnar build's journal +
Chrome trace (``universe.build`` spans from :mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache import CODE_SALT
from repro.core.world import WorldConfig, _ENRICHED_SHARES
from repro.geo import MobilityModel
from repro.images import ImageFeatures
from repro.obs.tracer import tracing
from repro.platform import (
    AdAccount,
    AdCreative,
    AudienceStore,
    CompetitionModel,
    DeliveryEngine,
    EarModel,
    EngagementModel,
    EngagementParams,
    Objective,
    TargetingSpec,
)
from repro.population import UserUniverse
from repro.population.activity import ActivityModel
from repro.rng import SeedSequenceFactory
from repro.types import State
from repro.voters.registry import RegistryConfig, VoterRegistry

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_universe.json"
BENCH_SEED = 7


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB (Linux: ru_maxrss KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def build_registries(config: WorldConfig) -> tuple[list[VoterRegistry], float]:
    """The two state registries a world is grown from, plus build seconds."""
    rngs = SeedSequenceFactory(config.seed)
    registry_config = RegistryConfig(race_shares=dict(_ENRICHED_SHARES))
    start = time.perf_counter()
    registries = [
        VoterRegistry(
            state, config.registry_size, rngs.get(f"registry.{state.value.lower()}"),
            config=registry_config,
        )
        for state in (State.FL, State.NC)
    ]
    return registries, time.perf_counter() - start


def build_universe(registries, config: WorldConfig, mode: str) -> UserUniverse:
    rngs = SeedSequenceFactory(config.seed)
    return UserUniverse(
        registries,
        rngs.get("universe"),
        activity=ActivityModel(rngs.get("activity"), base_sessions=config.sessions_per_day),
        proxy_fidelity=config.proxy_fidelity,
        mode=mode,
    )


def bench_cold(registries, config: WorldConfig, mode: str, rounds: int) -> dict:
    """Median cold-construction wall time of one universe in ``mode``."""
    times = []
    universe = None
    for _ in range(rounds):
        start = time.perf_counter()
        universe = build_universe(registries, config, mode)
        times.append(time.perf_counter() - start)
    median_s = statistics.median(times)
    return {
        "mode": mode,
        "median_ms": round(median_s * 1000.0, 2),
        "users_per_sec": round(len(universe) / median_s, 1),
        "n_users": len(universe),
        "columns_bytes_per_user": round(universe.columns.nbytes / len(universe), 2),
        "rounds": rounds,
    }


def bench_warm(universe: UserUniverse, rounds: int) -> dict:
    """Median snapshot round-trip load time (the warm cache path)."""
    arrays = universe.to_arrays()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        restored = UserUniverse.from_arrays(arrays)
        times.append(time.perf_counter() - start)
    median_s = statistics.median(times)
    assert len(restored) == len(universe)
    return {
        "mode": "warm_load",
        "median_ms": round(median_s * 1000.0, 2),
        "users_per_sec": round(len(universe) / median_s, 1),
        "n_users": len(universe),
        "rounds": rounds,
    }


def bench_matching(universe: UserUniverse, rounds: int) -> dict:
    """Custom-audience match throughput over every indexed hash."""
    columns = universe.columns
    indexed = columns.pii_hash[columns.pii_hash != b""]
    uploads = np.char.decode(indexed, "ascii").tolist()
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        matched = universe.matcher.match_indices(uploads)
        times.append(time.perf_counter() - start)
    median_s = statistics.median(times)
    assert len(matched) == len(uploads)
    return {
        "mode": "match_indices",
        "median_ms": round(median_s * 1000.0, 2),
        "hashes_per_sec": round(len(uploads) / median_s, 1),
        "n_hashes": len(uploads),
        "rounds": rounds,
    }


def run_delivery_day(universe: UserUniverse, seed: int, n_ads: int = 4) -> dict:
    """One broad-targeting vectorized delivery day (the xl serving guard)."""
    store = AudienceStore(universe)
    account = AdAccount(account_id="bench-universe")
    campaign = account.create_campaign("c", Objective.TRAFFIC)
    ads = []
    # An empty spec is rejected ("selects everyone"); the wide age bound
    # keeps the day effectively broad while satisfying the platform.
    targeting = TargetingSpec(age_min=18, age_max=120)
    for i in range(n_ads):
        adset = account.create_adset(campaign, f"as{i}", 300, targeting)
        creative = AdCreative(
            headline="h",
            body="b",
            destination_url="https://x.org",
            image=ImageFeatures(
                race_score=0.9 if i % 2 else 0.1, gender_score=0.5, age_years=30.0
            ),
        )
        ad = account.create_ad(adset, f"ad{i}", creative)
        ad.review_status = "APPROVED"
        ads.append(ad)
    params = EngagementParams()
    engine = DeliveryEngine(
        universe,
        store,
        account,
        ear=EarModel.constant(params.base_rate),
        engagement=EngagementModel(params),
        competition=CompetitionModel(np.random.default_rng(seed + 1)),
        mobility=MobilityModel(np.random.default_rng(seed + 2)),
        rng=np.random.default_rng(seed + 3),
        mode="vectorized",
    )
    start = time.perf_counter()
    result = engine.run(ads)
    seconds = time.perf_counter() - start
    return {
        "mode": "xl_delivery_day",
        "median_ms": round(seconds * 1000.0, 2),
        "slots": result.total_slots,
        "slots_per_sec": round(result.total_slots / seconds, 1),
        "impressions": result.insights.total_impressions(),
        "n_ads": n_ads,
        "rounds": 1,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rounds", type=int, default=3, help="runs per mode (median)")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick", action="store_true", help="small test scale, no speedup assertion (CI)"
    )
    scale.add_argument(
        "--xl", action="store_true",
        help="also build the ~1M-user universe and serve one delivery day",
    )
    parser.add_argument(
        "--no-check", action="store_true", help="skip the >=10x speedup assertion"
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write a traced columnar build's journal.jsonl + trace.json here",
    )
    args = parser.parse_args(argv)

    config = WorldConfig.small(args.seed) if args.quick else WorldConfig.paper(args.seed)
    scale_name = "small" if args.quick else "paper"
    print(f"generating registries ({config.registry_size} records each) ...", flush=True)
    registries, registry_s = build_registries(config)
    print(f"registries in {registry_s:.1f}s", flush=True)

    records = []
    common = {
        "world": scale_name,
        "seed": args.seed,
        "registry_build_ms": round(registry_s * 1000.0, 2),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    for mode in ("reference", "columnar"):
        rounds = 1 if mode == "reference" else args.rounds
        record = bench_cold(registries, config, mode, rounds)
        record.update(common)
        records.append(record)
        print(
            f"{mode:>13}: {record['median_ms']:.1f} ms "
            f"({record['users_per_sec']:.0f} users/s, "
            f"{record['columns_bytes_per_user']:.1f} B/user)",
            flush=True,
        )
    reference_ms = records[0]["median_ms"]
    columnar_ms = records[1]["median_ms"]
    speedup = reference_ms / columnar_ms
    for record in records:
        record["speedup_vs_reference"] = round(reference_ms / record["median_ms"], 2)
    print(f"cold speedup: {speedup:.1f}x")

    universe = build_universe(registries, config, "columnar")
    for bench in (bench_warm(universe, args.rounds), bench_matching(universe, args.rounds)):
        bench.update(common)
        records.append(bench)
        per_sec = bench.get("users_per_sec", bench.get("hashes_per_sec"))
        print(f"{bench['mode']:>13}: {bench['median_ms']:.1f} ms ({per_sec:.0f}/s)", flush=True)

    if args.xl:
        xl_config = WorldConfig.xl(args.seed)
        print(
            f"xl: generating registries ({xl_config.registry_size} records each) ...",
            flush=True,
        )
        xl_registries, xl_registry_s = build_registries(xl_config)
        start = time.perf_counter()
        xl_universe = build_universe(xl_registries, xl_config, "columnar")
        build_s = time.perf_counter() - start
        del xl_registries
        xl_common = {
            "world": "xl",
            "seed": args.seed,
            "registry_build_ms": round(xl_registry_s * 1000.0, 2),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        xl_build = {
            "mode": "columnar",
            "median_ms": round(build_s * 1000.0, 2),
            "users_per_sec": round(len(xl_universe) / build_s, 1),
            "n_users": len(xl_universe),
            "columns_bytes_per_user": round(
                xl_universe.columns.nbytes / len(xl_universe), 2
            ),
            "rounds": 1,
            **xl_common,
        }
        records.append(xl_build)
        print(
            f"xl universe: {len(xl_universe)} users in {build_s:.1f}s "
            f"({xl_universe.columns.nbytes / 2**20:.0f} MiB of columns)",
            flush=True,
        )
        day = run_delivery_day(xl_universe, args.seed)
        day.update(xl_common)
        day["peak_rss_mb"] = round(peak_rss_mb(), 1)
        records.append(day)
        print(
            f"xl delivery day: {day['median_ms'] / 1000.0:.1f}s "
            f"({day['slots']} slots, peak RSS {day['peak_rss_mb']:.0f} MiB)",
            flush=True,
        )
        del xl_universe

    if args.trace_out is not None:
        from repro.obs.journal import RunJournal, RunManifest, write_run_artifacts

        with tracing() as tracer:
            build_universe(registries, config, "columnar")
            spans = tracer.drain()
        out = Path(args.trace_out)
        with RunJournal(out / "journal.jsonl") as journal:
            journal.event("run", command="bench_universe", world=scale_name)
            n_spans = journal.spans(spans, pid=os.getpid(), job=0)
        manifest = RunManifest(
            command="bench_universe --trace-out",
            code_salt=CODE_SALT,
            seeds=(args.seed,),
            world_fingerprints=(),
            n_spans=n_spans,
        )
        paths = write_run_artifacts(out, manifest=manifest, journal_path=out / "journal.jsonl")
        print(f"wrote traced-build artifacts to {paths['trace'].parent}")

    for record in records:
        record["peak_rss_mb"] = record.get("peak_rss_mb", round(peak_rss_mb(), 1))
    existing = []
    if OUT_PATH.exists():
        existing = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    existing.extend(records)
    OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")
    print(f"appended {len(records)} records to {OUT_PATH}")

    if not args.no_check and not args.quick and speedup < 10.0:
        print("FAIL: columnar build is less than 10x the reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
