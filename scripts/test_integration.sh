#!/usr/bin/env sh
# Run the integration tier: HTTP-socket transport tests and the chaos
# (fault-injection) campaign runs.  Tier-1 (`pytest -x -q`) excludes
# these via the default `-m 'not integration'` addopts; the explicit
# marker expression here overrides it (pytest honors the last -m).
set -eu
cd "$(dirname "$0")/.."
exec python -m pytest -m integration -q "$@"
