#!/usr/bin/env python
"""Bench regression gate: fail CI when the newest bench record regresses.

The weekly integration job appends records to ``BENCH_*.json``; until
now they were logs, not telemetry — a silent 2x slowdown would merge.
This gate turns the trajectory into an enforced contract:

* records are grouped by their identity fields (``mode``/``bench``/
  ``stage`` plus the scale knobs: world, preset, n_workers, ...), so a
  2-worker serving record is only ever compared against prior 2-worker
  serving records;
* within each group, the newest record is compared metric-by-metric
  against the **median of up to the last 5 prior records** (median, not
  last: one noisy historical run must not poison the baseline);
* only metrics with a known direction are judged — ``rps``/``speedup``
  up is good, ``median_ms``/``p50_ms`` down is good — and a metric
  missing from either side is skipped (new metrics backfill naturally);
* a relative regression beyond the threshold (default 25%, generous
  because CI boxes are noisy and single-core) fails the run.

Usage::

    python scripts/check_bench.py                   # gate every BENCH_*.json
    python scripts/check_bench.py --threshold 0.10 BENCH_serving.json
    python scripts/check_bench.py --json            # machine-readable report

Stdlib-only; importable (``load_records``/``compare``) for the tier-1
unit tests in ``tests/test_check_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Metrics where a *larger* value is an improvement.
HIGHER_BETTER = (
    "rps",
    "rps_cached",
    "rps_uncached",
    "cache_hit_rate",
    "speedup",
    "speedup_vs_reference",
    "slots_per_sec_per_core",
    "requests_clean",
    "hashes_per_sec",
)

#: Metrics where a *smaller* value is an improvement.
LOWER_BETTER = (
    "median_ms",
    "p50_ms",
    "p99_ms",
    "serial_cold_s",
    "parallel_warm_s",
    "build_s",
    "trace_overhead_pct",
    "telemetry_overhead_pct",
    "rss_delta_mb",
    "peak_rss_mb",
    "stage_route_us",
    "stage_decode_us",
    "stage_cache_us",
    "stage_handler_us",
    "stage_encode_us",
)

#: Fields that identify *what* was measured (any subset present in a
#: record becomes its group key; scale knobs keep apples with apples).
GROUP_FIELDS = (
    "bench",
    "mode",
    "stage",
    "preset",
    "world",
    "scale",
    "n_workers",
    "n_ads",
    "n_users",
    "concurrency",
    "jobs",
    "fault_rate",
)

#: Absolute noise floors (metric units).  A baseline near zero turns
#: allocator jitter into huge relative "regressions" — ±1 MB of RSS
#: delta is noise, not a finding — so relative change is computed
#: against ``max(|baseline|, floor)``.
NOISE_FLOOR = {
    "rss_delta_mb": 16.0,
    "trace_overhead_pct": 5.0,
    "telemetry_overhead_pct": 5.0,
    # Per-stage means are single-digit-to-tens of µs; scheduler jitter
    # on a shared CI box easily moves them ±10 µs.
    "stage_route_us": 10.0,
    "stage_decode_us": 10.0,
    "stage_cache_us": 10.0,
    "stage_handler_us": 25.0,
    "stage_encode_us": 10.0,
}

#: Baselines are the median of up to this many prior records per group.
DEFAULT_WINDOW = 5

#: Default relative regression tolerance (0.25 == 25%).
DEFAULT_THRESHOLD = 0.25


def group_key(record: Mapping[str, Any]) -> tuple:
    """The identity of a record: every GROUP_FIELD it carries."""
    return tuple(
        (field, record[field]) for field in GROUP_FIELDS if record.get(field) is not None
    )


def load_records(path: Path) -> list[dict[str, Any]]:
    """Load one BENCH file (a flat JSON array, oldest first)."""
    records = json.loads(path.read_text())
    if not isinstance(records, list):
        raise ValueError(f"{path} is not a JSON array of bench records")
    return records


def _numeric(value: Any) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def compare(
    records: Iterable[Mapping[str, Any]],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    source: str = "",
) -> list[dict[str, Any]]:
    """Judge the newest record of every group against its history.

    Returns one result row per (group, metric) with a ``status`` of
    ``ok`` / ``regression`` / ``improvement`` / ``new`` (no history or a
    metric the prior records never carried — the backfill case).
    """
    groups: dict[tuple, list[Mapping[str, Any]]] = {}
    for record in records:
        groups.setdefault(group_key(record), []).append(record)

    results: list[dict[str, Any]] = []
    for key, members in groups.items():
        newest, history = members[-1], members[:-1]
        label = ", ".join(f"{field}={value}" for field, value in key) or "(ungrouped)"
        for metric in HIGHER_BETTER + LOWER_BETTER:
            new_value = _numeric(newest.get(metric))
            if new_value is None:
                continue
            prior = [
                value
                for record in history[-window:]
                if (value := _numeric(record.get(metric))) is not None
            ]
            row = {
                "source": source,
                "group": label,
                "metric": metric,
                "value": new_value,
                "baseline": None,
                "change_pct": None,
                "status": "new",
            }
            if prior:
                baseline = statistics.median(prior)
                row["baseline"] = baseline
                scale = max(abs(baseline), NOISE_FLOOR.get(metric, 0.0))
                if scale > 0:
                    if metric in HIGHER_BETTER:
                        change = (new_value - baseline) / scale
                    else:
                        change = (baseline - new_value) / scale
                    # change > 0 is always an improvement after the flip
                    row["change_pct"] = round(change * 100.0, 2)
                    if change < -threshold:
                        row["status"] = "regression"
                    elif change > threshold:
                        row["status"] = "improvement"
                    else:
                        row["status"] = "ok"
                else:
                    row["status"] = "ok"
            results.append(row)
    return results


def check_paths(
    paths: Iterable[Path],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> list[dict[str, Any]]:
    """Run :func:`compare` over every bench file; missing files skip."""
    results: list[dict[str, Any]] = []
    for path in paths:
        if not path.exists():
            continue
        results.extend(
            compare(
                load_records(path), threshold=threshold, window=window, source=path.name
            )
        )
    return results


def _render(results: list[dict[str, Any]]) -> str:
    lines = []
    for row in results:
        change = "" if row["change_pct"] is None else f"{row['change_pct']:+.1f}%"
        baseline = "" if row["baseline"] is None else f" (baseline {row['baseline']:g})"
        marker = {"regression": "FAIL", "improvement": "  up", "new": " new"}.get(
            row["status"], "  ok"
        )
        lines.append(
            f"{marker}  {row['source']}: {row['metric']}={row['value']:g}"
            f"{baseline} {change}  [{row['group']}]"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="bench files to gate (default: every BENCH_*.json beside the repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression tolerance (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help="prior records per group forming the median baseline",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    args = parser.parse_args(argv)

    paths = args.paths or sorted(Path(__file__).resolve().parent.parent.glob("BENCH_*.json"))
    results = check_paths(paths, threshold=args.threshold, window=args.window)
    regressions = [row for row in results if row["status"] == "regression"]

    if args.json:
        print(json.dumps({"results": results, "regressions": len(regressions)}, indent=2))
    else:
        print(_render(results))
        print(
            f"\n{len(results)} metric(s) checked across {len(paths)} file(s): "
            f"{len(regressions)} regression(s) beyond {args.threshold:.0%}"
        )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
