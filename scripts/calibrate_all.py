"""Run all campaigns once and print every paper-comparable table.

Serial (``--jobs 1``, default) keeps the original behaviour: one shared
world, campaigns run back-to-back in order.  With ``--jobs N`` the
selected campaigns are dispatched through the experiment scheduler
instead — each campaign gets its own (cache-warm) world instance and the
rendered tables print in the canonical order once all rows are in.
"""
import argparse
import os
import time
from pathlib import Path

from repro.core.analysis import table3_rows
from repro.core.experiments import (
    run_campaign1,
    run_campaign2,
    run_campaign3,
    run_campaign4,
    run_appendix_a,
)
from repro.core.reporting import (
    render_identity_regressions,
    render_jobad_regressions,
    render_single_regression,
    render_table3,
)
from repro.core.scheduler import (
    ExperimentJob,
    ExperimentScheduler,
    write_sweep_observability,
)
from repro.core.world import SimulatedWorld, WorldConfig
from repro.obs.tracer import tracing

PAPER_NOTES = {
    "campaign1": "Table 4a (paper: Black .1812***, Child->F .0924***, Eld->65+ .1180***, MA .0508**, Fem .0359**)",
    "campaign2": "Table 4b (paper: Black .2534***, Fem->F .0780**, Child->F .1328***, Child->35+ -.0888***, Fem->35+ .0362**, Black->35+ .0343**)",
    "campaign3": "Table 4c (paper: Black .2344***, Fem->F .1377***, Child->F .1643***, Child->35+ -.0917***, Teen->35+ -.0644**)",
    "campaign4": "paper T5: I .141***, II .070*, III .105***; IV .023ns V -.020ns VI .002ns",
    "appendix_a": "Table A1 (paper: Black .0849**, others ns, R2 .392)",
}

WHICH_TO_CAMPAIGN = {
    "1": "campaign1",
    "2": "campaign2",
    "3": "campaign3",
    "4": "campaign4",
    "a": "appendix_a",
}


def run_serial(seed: int, which: str, trace_out: Path | None = None) -> None:
    t0 = time.time()
    with tracing(trace_out is not None) as tracer:
        _run_serial_inner(seed, which, t0)
        if trace_out is not None:
            _write_serial_trace(trace_out, tracer, seed, time.time() - t0)


def _write_serial_trace(out: Path, tracer, seed: int, wall_seconds: float) -> None:
    from repro.cache import CODE_SALT
    from repro.obs.journal import RunJournal, RunManifest, write_run_artifacts
    from repro.obs.metrics import get_registry

    with RunJournal(out / "journal.jsonl") as journal:
        journal.event("run", command="calibrate_all", seed=seed)
        n_spans = journal.spans(tracer.drain(), pid=os.getpid(), job=0)
        journal.metrics(get_registry().snapshot(), pid=os.getpid(), job=0)
    manifest = RunManifest(
        command="calibrate_all --trace-out",
        code_salt=CODE_SALT,
        seeds=(seed,),
        metrics=get_registry().snapshot(),
        n_spans=n_spans,
        wall_seconds=wall_seconds,
    )
    write_run_artifacts(out, manifest=manifest, journal_path=out / "journal.jsonl")
    print(f"wrote trace artifacts to {out}")


def _run_serial_inner(seed: int, which: str, t0: float) -> None:
    world = SimulatedWorld(WorldConfig.paper(seed=seed))
    print(f"world: {time.time()-t0:.0f}s")

    if "1" in which:
        r1 = run_campaign1(world)
        print(f"C1: reach={r1.summary.reach} impr={r1.summary.impressions} spend=${r1.summary.spend:.0f}")
        print(render_table3(table3_rows(r1.deliveries)))
        print(render_identity_regressions(r1.regressions, title=PAPER_NOTES["campaign1"]))
    if "2" in which:
        r2 = run_campaign2(world)
        print(f"C2: reach={r2.summary.reach} impr={r2.summary.impressions} spend=${r2.summary.spend:.0f}")
        print(render_identity_regressions(r2.regressions, title=PAPER_NOTES["campaign2"]))
    if "3" in which:
        r3 = run_campaign3(world)
        print(f"C3: reach={r3.summary.reach} impr={r3.summary.impressions} spend=${r3.summary.spend:.0f}")
        print(render_identity_regressions(r3.regressions, title=PAPER_NOTES["campaign3"]))
    if "4" in which:
        r4 = run_campaign4(world)
        print(f"C4: reach={r4.summary.reach} impr={r4.summary.impressions} spend=${r4.summary.spend:.0f}")
        print(render_jobad_regressions(r4.regressions))
        print(PAPER_NOTES["campaign4"])
    if "a" in which:
        ra = run_appendix_a(world)
        print(f"AppA: kept={ra.kept_images} rejected={ra.rejected_ads}")
        print(render_single_regression(ra.regression, title=PAPER_NOTES["appendix_a"], column="% Black"))
    print(f"total: {time.time()-t0:.0f}s")


def run_scheduled(
    seed: int, which: str, jobs: int, trace_out: Path | None = None
) -> None:
    t0 = time.time()
    config = WorldConfig.paper(seed=seed)
    campaigns = [WHICH_TO_CAMPAIGN[c] for c in which if c in WHICH_TO_CAMPAIGN]
    job_list = [
        ExperimentJob.make(config, campaign, {"render": True}) for campaign in campaigns
    ]
    scheduler = ExperimentScheduler(jobs=jobs, trace=trace_out is not None)
    with tracing(trace_out is not None):
        rows = scheduler.run(job_list)
    if trace_out is not None:
        write_sweep_observability(
            trace_out,
            rows=rows,
            scheduler=scheduler,
            command=f"calibrate_all --jobs {jobs} --which {which}",
            wall_seconds=time.time() - t0,
        )
        print(f"wrote trace artifacts to {trace_out}")
    for campaign, row in zip(campaigns, rows):
        stats = {
            k: v for k, v in row.items() if k not in ("rendered", "world_build")
        }
        print(f"{campaign}: " + " ".join(f"{k}={v}" for k, v in stats.items()))
        if "rendered" in row:
            print(row["rendered"])
        note = PAPER_NOTES.get(campaign)
        if note and campaign == "campaign4":
            print(note)
    print(f"total ({jobs} jobs): {time.time()-t0:.0f}s")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--which", default="1234a", help="campaign subset, e.g. 13a (1/2/3/4/a)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; >1 dispatches campaigns through the scheduler",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="enable tracing; write journal/manifest/trace artifacts here",
    )
    args = parser.parse_args()
    if args.jobs > 1:
        run_scheduled(args.seed, args.which, args.jobs, trace_out=args.trace_out)
    else:
        run_serial(args.seed, args.which, trace_out=args.trace_out)


if __name__ == "__main__":
    main()
