"""Run all campaigns once and print every paper-comparable table.

Serial (``--jobs 1``, default) keeps the original behaviour: one shared
world, campaigns run back-to-back in order.  With ``--jobs N`` the
selected campaigns are dispatched through the experiment scheduler
instead — each campaign gets its own (cache-warm) world instance and the
rendered tables print in the canonical order once all rows are in.
"""
import argparse
import time

from repro.core.analysis import table3_rows
from repro.core.experiments import (
    run_campaign1,
    run_campaign2,
    run_campaign3,
    run_campaign4,
    run_appendix_a,
)
from repro.core.reporting import (
    render_identity_regressions,
    render_jobad_regressions,
    render_single_regression,
    render_table3,
)
from repro.core.scheduler import ExperimentJob, ExperimentScheduler
from repro.core.world import SimulatedWorld, WorldConfig

PAPER_NOTES = {
    "campaign1": "Table 4a (paper: Black .1812***, Child->F .0924***, Eld->65+ .1180***, MA .0508**, Fem .0359**)",
    "campaign2": "Table 4b (paper: Black .2534***, Fem->F .0780**, Child->F .1328***, Child->35+ -.0888***, Fem->35+ .0362**, Black->35+ .0343**)",
    "campaign3": "Table 4c (paper: Black .2344***, Fem->F .1377***, Child->F .1643***, Child->35+ -.0917***, Teen->35+ -.0644**)",
    "campaign4": "paper T5: I .141***, II .070*, III .105***; IV .023ns V -.020ns VI .002ns",
    "appendix_a": "Table A1 (paper: Black .0849**, others ns, R2 .392)",
}

WHICH_TO_CAMPAIGN = {
    "1": "campaign1",
    "2": "campaign2",
    "3": "campaign3",
    "4": "campaign4",
    "a": "appendix_a",
}


def run_serial(seed: int, which: str) -> None:
    t0 = time.time()
    world = SimulatedWorld(WorldConfig.paper(seed=seed))
    print(f"world: {time.time()-t0:.0f}s")

    if "1" in which:
        r1 = run_campaign1(world)
        print(f"C1: reach={r1.summary.reach} impr={r1.summary.impressions} spend=${r1.summary.spend:.0f}")
        print(render_table3(table3_rows(r1.deliveries)))
        print(render_identity_regressions(r1.regressions, title=PAPER_NOTES["campaign1"]))
    if "2" in which:
        r2 = run_campaign2(world)
        print(f"C2: reach={r2.summary.reach} impr={r2.summary.impressions} spend=${r2.summary.spend:.0f}")
        print(render_identity_regressions(r2.regressions, title=PAPER_NOTES["campaign2"]))
    if "3" in which:
        r3 = run_campaign3(world)
        print(f"C3: reach={r3.summary.reach} impr={r3.summary.impressions} spend=${r3.summary.spend:.0f}")
        print(render_identity_regressions(r3.regressions, title=PAPER_NOTES["campaign3"]))
    if "4" in which:
        r4 = run_campaign4(world)
        print(f"C4: reach={r4.summary.reach} impr={r4.summary.impressions} spend=${r4.summary.spend:.0f}")
        print(render_jobad_regressions(r4.regressions))
        print(PAPER_NOTES["campaign4"])
    if "a" in which:
        ra = run_appendix_a(world)
        print(f"AppA: kept={ra.kept_images} rejected={ra.rejected_ads}")
        print(render_single_regression(ra.regression, title=PAPER_NOTES["appendix_a"], column="% Black"))
    print(f"total: {time.time()-t0:.0f}s")


def run_scheduled(seed: int, which: str, jobs: int) -> None:
    t0 = time.time()
    config = WorldConfig.paper(seed=seed)
    campaigns = [WHICH_TO_CAMPAIGN[c] for c in which if c in WHICH_TO_CAMPAIGN]
    job_list = [
        ExperimentJob.make(config, campaign, {"render": True}) for campaign in campaigns
    ]
    rows = ExperimentScheduler(jobs=jobs).run(job_list)
    for campaign, row in zip(campaigns, rows):
        stats = {
            k: v for k, v in row.items() if k not in ("rendered", "world_build")
        }
        print(f"{campaign}: " + " ".join(f"{k}={v}" for k, v in stats.items()))
        if "rendered" in row:
            print(row["rendered"])
        note = PAPER_NOTES.get(campaign)
        if note and campaign == "campaign4":
            print(note)
    print(f"total ({jobs} jobs): {time.time()-t0:.0f}s")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--which", default="1234a", help="campaign subset, e.g. 13a (1/2/3/4/a)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; >1 dispatches campaigns through the scheduler",
    )
    args = parser.parse_args()
    if args.jobs > 1:
        run_scheduled(args.seed, args.which, args.jobs)
    else:
        run_serial(args.seed, args.which)


if __name__ == "__main__":
    main()
