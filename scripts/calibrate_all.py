"""Run all campaigns once and print every paper-comparable table."""
import sys
import time

from repro.core.analysis import table3_rows
from repro.core.experiments import (
    build_audiences,
    run_campaign1,
    run_campaign2,
    run_campaign3,
    run_campaign4,
    run_appendix_a,
    stock_specs,
)
from repro.core.reporting import (
    render_identity_regressions,
    render_jobad_regressions,
    render_single_regression,
    render_table3,
)
from repro.core.world import SimulatedWorld, WorldConfig

seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
which = sys.argv[2] if len(sys.argv) > 2 else "1234a"
t0 = time.time()
world = SimulatedWorld(WorldConfig.paper(seed=seed))
print(f"world: {time.time()-t0:.0f}s")

if "1" in which:
    r1 = run_campaign1(world)
    print(f"C1: reach={r1.summary.reach} impr={r1.summary.impressions} spend=${r1.summary.spend:.0f}")
    print(render_table3(table3_rows(r1.deliveries)))
    print(render_identity_regressions(r1.regressions, title="Table 4a (paper: Black .1812***, Child->F .0924***, Eld->65+ .1180***, MA .0508**, Fem .0359**)"))
if "2" in which:
    r2 = run_campaign2(world)
    print(f"C2: reach={r2.summary.reach} impr={r2.summary.impressions} spend=${r2.summary.spend:.0f}")
    print(render_identity_regressions(r2.regressions, title="Table 4b (paper: Black .2534***, Fem->F .0780**, Child->F .1328***, Child->35+ -.0888***, Fem->35+ .0362**, Black->35+ .0343**)"))
if "3" in which:
    r3 = run_campaign3(world)
    print(f"C3: reach={r3.summary.reach} impr={r3.summary.impressions} spend=${r3.summary.spend:.0f}")
    print(render_identity_regressions(r3.regressions, title="Table 4c (paper: Black .2344***, Fem->F .1377***, Child->F .1643***, Child->35+ -.0917***, Teen->35+ -.0644**)"))
if "4" in which:
    r4 = run_campaign4(world)
    print(f"C4: reach={r4.summary.reach} impr={r4.summary.impressions} spend=${r4.summary.spend:.0f}")
    print(render_jobad_regressions(r4.regressions))
    print("paper T5: I .141***, II .070*, III .105***; IV .023ns V -.020ns VI .002ns")
if "a" in which:
    ra = run_appendix_a(world)
    print(f"AppA: kept={ra.kept_images} rejected={ra.rejected_ads}")
    print(render_single_regression(ra.regression, title="Table A1 (paper: Black .0849**, others ns, R2 .392)", column="% Black"))
print(f"total: {time.time()-t0:.0f}s")
