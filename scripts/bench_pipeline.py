"""Benchmark the experiment pipeline: artifact cache + parallel scheduler.

Two measurements, appended as JSON records to ``BENCH_pipeline.json`` at
the repo root (same convention as ``BENCH_delivery.json``):

* **world_build** — one paper-scale ``SimulatedWorld`` built cold (empty
  cache) and again warm (all stages restored from the on-disk artifact
  store).  The warm rebuild is expected to be at least 10x faster
  (asserted unless ``--no-check``).
* **seed_sweep** — the 5-seed stability replication, first serially
  against the empty cache (the old workflow: every world built cold),
  then with ``--jobs 4`` workers against the now-warm cache (the rerun
  workflow).  Expected at least 2.5x faster (asserted unless
  ``--no-check``).  On a single-core host the cache provides most of that
  win; on multicore hosts the process pool adds to it.  Both timings and
  the CPU count are recorded so the numbers stay interpretable.

Runs against a private temporary cache directory by default so results
never depend on (or pollute) the user's real ``~/.cache/repro-worlds``:

    PYTHONPATH=src python scripts/bench_pipeline.py
    PYTHONPATH=src python scripts/bench_pipeline.py --small   # quick check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.cache import ArtifactCache
from repro.core.scheduler import run_seed_sweep
from repro.core.world import SimulatedWorld, WorldConfig

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
BENCH_SEED = 7
SWEEP_SEEDS = (101, 202, 303, 404, 505)


def bench_world_build(config: WorldConfig, cache: ArtifactCache) -> dict:
    """Cold-vs-warm wall time of one full world build."""
    start = time.perf_counter()
    cold_world = SimulatedWorld(config, cache=cache)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm_world = SimulatedWorld(config, cache=cache)
    warm_s = time.perf_counter() - start

    sources = {name: t.source for name, t in warm_world.build_report.items()}
    return {
        "bench": "world_build",
        "seed": config.seed,
        "n_users": len(cold_world.universe.users),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 2),
        "warm_sources": sources,
    }


def bench_seed_sweep(
    scale: str, jobs: int, cache: ArtifactCache, trace_out: Path | None = None
) -> dict:
    """Serial-cold vs parallel-warm wall time of the stability sweep."""
    start = time.perf_counter()
    serial_rows = run_seed_sweep(
        SWEEP_SEEDS, campaign="stability", scale=scale, jobs=1, cache=cache
    )
    serial_cold_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel_rows = run_seed_sweep(
        SWEEP_SEEDS,
        campaign="stability",
        scale=scale,
        jobs=jobs,
        cache=cache,
        trace_out=trace_out,
    )
    parallel_warm_s = time.perf_counter() - start

    drop = ("world_build_s", "world_build")
    strip = lambda row: {k: v for k, v in row.items() if k not in drop}  # noqa: E731
    return {
        "bench": "seed_sweep",
        "scale": scale,
        "seeds": list(SWEEP_SEEDS),
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "effective_workers": min(jobs, os.cpu_count() or jobs, len(SWEEP_SEEDS)),
        "serial_cold_s": round(serial_cold_s, 3),
        "parallel_warm_s": round(parallel_warm_s, 3),
        "speedup": round(serial_cold_s / parallel_warm_s, 2),
        "rows_identical": [strip(r) for r in serial_rows]
        == [strip(r) for r in parallel_rows],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument("--jobs", type=int, default=4, help="sweep worker processes")
    parser.add_argument(
        "--small", action="store_true", help="use the small test world (quick check)"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="cache directory (default: a fresh temporary one)",
    )
    parser.add_argument(
        "--no-check", action="store_true", help="skip the speedup assertions"
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="trace the parallel warm sweep; writes journal/manifest/trace here",
    )
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        cache = ArtifactCache(args.cache_dir)
    else:
        cache = ArtifactCache(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    scale = "small" if args.small else "paper"
    config = (
        WorldConfig.small(args.seed) if args.small else WorldConfig.paper(args.seed)
    )

    print(f"world build ({scale}, registry {config.registry_size}) ...", flush=True)
    build = bench_world_build(config, cache)
    print(
        f"  cold {build['cold_s']:.2f}s -> warm {build['warm_s']:.2f}s "
        f"({build['speedup']:.1f}x)",
        flush=True,
    )

    print(f"5-seed stability sweep (small worlds, jobs={args.jobs}) ...", flush=True)
    sweep = bench_seed_sweep("small", args.jobs, cache, trace_out=args.trace_out)
    if args.trace_out is not None:
        print(f"  traced warm sweep artifacts in {args.trace_out}", flush=True)
    print(
        f"  serial cold {sweep['serial_cold_s']:.2f}s -> "
        f"jobs={args.jobs} warm {sweep['parallel_warm_s']:.2f}s "
        f"({sweep['speedup']:.1f}x, rows identical: {sweep['rows_identical']})",
        flush=True,
    )

    timestamp = time.strftime("%Y-%m-%dT%H:%M:%S")
    build["scale"] = scale
    records = [build, sweep]
    for record in records:
        record["timestamp"] = timestamp

    existing = []
    if OUT_PATH.exists():
        existing = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    existing.extend(records)
    OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")
    print(f"appended {len(records)} records to {OUT_PATH}")

    failed = False
    if not args.no_check:
        if not args.small and build["speedup"] < 10.0:
            print("FAIL: warm world build is less than 10x the cold build", file=sys.stderr)
            failed = True
        if sweep["speedup"] < 2.5:
            print("FAIL: warm parallel sweep is less than 2.5x the serial cold sweep", file=sys.stderr)
            failed = True
        if not sweep["rows_identical"]:
            print("FAIL: parallel sweep rows differ from serial rows", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
