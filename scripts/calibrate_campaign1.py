"""Calibration harness: run Campaign 1 and print the paper-comparable stats."""
import sys
import time

from repro.core.analysis import table3_rows
from repro.core.experiments import run_campaign1
from repro.core.reporting import render_identity_regressions, render_table3
from repro.core.world import SimulatedWorld, WorldConfig

seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
t0 = time.time()
world = SimulatedWorld(WorldConfig.paper(seed=seed))
result = run_campaign1(world)
s = result.summary
print(f"[{time.time()-t0:.0f}s] ads={s.n_ads} reach={s.reach} impr={s.impressions} spend=${s.spend:.2f}")
print(render_table3(table3_rows(result.deliveries)))
print(render_identity_regressions(result.regressions, title="Table 4a"))
print("paper targets: Black img 73.8/white 56.3 %Black; child 59.4%F teen 48.2%F; "
      "45+ 70-81%; coef Black .18***, Child(F) .09***, Eld(65+) .12***, MA .05**, Fem .036**")
