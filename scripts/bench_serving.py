"""Benchmark the gateway serving tier: RPS, tail latency, memory sharing.

Drives a :class:`~repro.api.gateway.GatewayCluster` (spawned worker
processes over one shared-memory universe) with keep-alive REST clients
and appends one JSON record per measurement to ``BENCH_serving.json`` at
the repo root:

    PYTHONPATH=src python scripts/bench_serving.py
    PYTHONPATH=src python scripts/bench_serving.py --quick --scale small

Three phases:

* **latency sweep** — for every worker count (``--workers``, default
  ``1,2``) and concurrency level (``--concurrency``, default ``1,4,16``)
  each client thread opens its own keep-alive connection (connection
  affinity: the kernel pins it to one worker) and hammers
  ``GET /act_bench/ads``; the record carries RPS and p50/p99 latency.
* **memory accounting** — after each sweep the workers' ``/proc/<pid>/
  smaps`` are read: the shared universe block's mapping must stay
  shared (private bytes ≪ block size), and at xl scale total private
  RSS growth per extra worker must stay well under another copy of the
  82 MiB column block.  The assertion result is part of the record and
  a failure fails the script.
* **fault injection** — a full audience→campaign→delivery→insights flow
  through :class:`~repro.api.faults.FaultInjectingTransport` (seeded
  429/500/reset/slow chaos, bounded client retries) must produce the
  same audience and insights digest as a fault-free run.
* **telemetry overhead** — the same hammer (cache-busted, so the sink's
  per-served-request cost is measured against the full handler path)
  with the shared-memory metrics plane on vs off (worker-local
  registries); the shared sink's write-through must cost < 3% RPS
  (warn-only under ``--quick``, where tiny request counts on a one-core
  CI box are dominated by noise).
* **stage breakdown** — one single-worker cluster driven with uncached
  and cached load; the gateway's ``gateway_stage_*`` gauges yield mean
  per-stage latency (route/decode/cache/handler/encode, µs) and the
  response-cache hit rate as a ``serve+stages`` record.

``--quick`` (the weekly CI tier) shrinks request counts; pair it with
``--scale small``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import re
import statistics
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.api import FaultInjectingTransport, MarketingApiClient
from repro.api.gateway import GatewayCluster, GatewayConfig, rest_transport
from repro.api.protocol import HttpMethod
from repro.core.world import SimulatedWorld, WorldConfig

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
BENCH_SEED = 7
ACCOUNT = "bench"

SCALES = {
    "small": WorldConfig.small,
    "paper": WorldConfig.paper,
    "xl": WorldConfig.xl,
}

#: Benchmark gateways run with effectively unlimited token buckets so the
#: numbers measure serving capacity, not the configured throttle.
_UNTHROTTLED = GatewayConfig(rate_capacity=10**9, rate_refill_per_second=10**9)

_MAPPING_LINE = re.compile(r"^[0-9a-f]+-[0-9a-f]+\s")


def _int_list(text: str) -> tuple[int, ...]:
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad int list {text!r}") from exc
    if not values:
        raise argparse.ArgumentTypeError("list is empty")
    return values


# ---------------------------------------------------------------------------
# /proc accounting


def _shm_mapping_kb(pid: int, shm_name: str) -> dict[str, int]:
    """Private/shared kB of the universe block's mapping in one worker."""
    totals = {"private_kb": 0, "shared_kb": 0, "rss_kb": 0}
    in_block = False
    for line in Path(f"/proc/{pid}/smaps").read_text().splitlines():
        if _MAPPING_LINE.match(line):
            in_block = line.rstrip().endswith(f"/{shm_name}")
            continue
        if not in_block:
            continue
        key, _, rest = line.partition(":")
        parts = rest.split()
        if len(parts) < 2 or parts[1] != "kB":
            continue
        value = int(parts[0])
        if key in ("Private_Clean", "Private_Dirty"):
            totals["private_kb"] += value
        elif key in ("Shared_Clean", "Shared_Dirty"):
            totals["shared_kb"] += value
        elif key == "Rss":
            totals["rss_kb"] += value
    return totals


def _private_rss_kb(pid: int) -> int:
    """Total private (non-shared) resident kB of one worker."""
    total = 0
    for line in Path(f"/proc/{pid}/smaps_rollup").read_text().splitlines():
        key, _, rest = line.partition(":")
        if key in ("Private_Clean", "Private_Dirty", "Private_Hugetlb"):
            total += int(rest.split()[0])
    return total


# ---------------------------------------------------------------------------
# Workloads


def _image_payload() -> dict:
    return {"race_score": 0.5, "gender_score": 0.5, "age_years": 30.0}


def run_flow(client: MarketingApiClient, universe, *, tag: str) -> dict:
    """One full audience → campaign → delivery → insights flow.

    Returns the digest the fault-injection phase compares: everything
    the server's state machine determines, nothing wall-clock.
    """
    audience = client.create_custom_audience(ACCOUNT, f"aud-{tag}")
    hashes = [h.decode("ascii") for h in universe.columns.pii_hash[:600].tolist() if h]
    received = client.upload_audience_users(audience, hashes)
    campaign = client.create_campaign(ACCOUNT, f"c-{tag}", "TRAFFIC")
    adset = client.create_adset(
        ACCOUNT, f"as-{tag}", campaign, 150, {"custom_audience_ids": [audience]}
    )
    ad = client.create_ad(
        ACCOUNT,
        f"ad-{tag}",
        adset,
        {
            "headline": "h",
            "body": "b",
            "destination_url": "https://x.org",
            "image": _image_payload(),
        },
    )
    review = client.submit_for_review(ad)
    if review["review_status"] == "REJECTED":
        review = client.appeal(ad)
    assert review["review_status"] == "APPROVED", review
    delivery = client.deliver_day(ACCOUNT, [ad])
    insights = client.get_insights(ad)
    return {
        "received": received,
        "delivered": delivery["delivered_ads"],
        "impressions": insights["impressions"],
    }


def _hammer(
    port: int,
    token: str,
    requests: int,
    results: list,
    barrier,
    cache_bust: bool = False,
) -> None:
    """One client thread: its own keep-alive connection, ``requests`` reads.

    ``cache_bust`` varies an (ignored) query param per request so every
    request takes the full decode→handler→encode path instead of the
    response cache — phases that measure a *per-request* cost (the
    telemetry sink) need the uncached path to stay comparable with the
    pre-cache history.
    """
    transport = rest_transport("127.0.0.1", port)
    client = MarketingApiClient(transport, token)
    try:
        for _ in range(3):  # warm the connection and the worker's code paths
            client.call(HttpMethod.GET, f"/act_{ACCOUNT}/ads", {"limit": 10})
        barrier.wait()
        latencies = []
        start = time.perf_counter()
        for i in range(requests):
            params = {"limit": 10, "b": i} if cache_bust else {"limit": 10}
            t0 = time.perf_counter()
            client.call(HttpMethod.GET, f"/act_{ACCOUNT}/ads", params)
            latencies.append(time.perf_counter() - t0)
        results.append((latencies, time.perf_counter() - start))
    finally:
        transport.close()


def bench_concurrency(
    cluster: GatewayCluster,
    token: str,
    concurrency: int,
    requests: int,
    *,
    cache_bust: bool = False,
) -> dict:
    """RPS and latency percentiles at one concurrency level."""
    results: list = []
    barrier = threading.Barrier(concurrency)
    threads = [
        threading.Thread(
            target=_hammer,
            args=(cluster.port, token, requests, results, barrier, cache_bust),
        )
        for _ in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if len(results) != concurrency:
        raise RuntimeError("a load thread died; see traceback above")
    latencies = np.concatenate([np.asarray(lat) for lat, _ in results])
    wall = max(elapsed for _, elapsed in results)
    total = concurrency * requests
    return {
        "concurrency": concurrency,
        "requests": total,
        "rps": round(total / wall, 1),
        "p50_ms": round(float(np.percentile(latencies, 50)) * 1000.0, 3),
        "p99_ms": round(float(np.percentile(latencies, 99)) * 1000.0, 3),
    }


def measure_memory(cluster: GatewayCluster, baseline_private_kb: int | None) -> dict:
    """Per-worker memory accounting for one warmed-up cluster."""
    universe_mib = cluster.shared_nbytes / 2**20
    shm_private = [
        _shm_mapping_kb(pid, cluster.shared_name)["private_kb"]
        for pid in cluster.worker_pids
    ]
    private_total_kb = sum(_private_rss_kb(pid) for pid in cluster.worker_pids)
    n = len(cluster.worker_pids)
    growth_mib = None
    if baseline_private_kb is not None and n > 1:
        growth_mib = (private_total_kb - baseline_private_kb) / (n - 1) / 1024.0
    shm_private_max_mib = max(shm_private) / 1024.0
    # The block's mapping must stay shared in every worker; at xl scale
    # (82 MiB of columns) an extra worker must also cost far less than
    # another copy.  Small worlds skip the growth check: there the
    # interpreter's own private pages dwarf the (tiny) column block.
    ok = shm_private_max_mib < max(universe_mib / 10.0, 4.0)
    if growth_mib is not None and universe_mib >= 64.0:
        ok = ok and growth_mib < universe_mib
    return {
        "universe_mib": round(universe_mib, 1),
        "shm_private_max_mib": round(shm_private_max_mib, 2),
        "worker_private_total_mib": round(private_total_kb / 1024.0, 1),
        "rss_growth_per_extra_worker_mib": (
            None if growth_mib is None else round(growth_mib, 1)
        ),
        "zero_copy_ok": bool(ok),
        "_private_total_kb": private_total_kb,
    }


def bench_faults(world: SimulatedWorld, fault_rate: float, fault_seed: int) -> dict:
    """Chaos flow vs clean flow over fresh single-worker clusters."""

    def one_run(with_faults: bool):
        cluster = GatewayCluster(
            world.universe,
            world.config,
            world.ear,
            workers=1,
            gateway=_UNTHROTTLED,
            accounts=(ACCOUNT,),
        )
        cluster.start()
        try:
            transport = rest_transport("127.0.0.1", cluster.port)
            injector = None
            call = transport
            if with_faults:
                injector = FaultInjectingTransport(
                    transport, error_rate=fault_rate, seed=fault_seed
                )
                call = injector
            client = MarketingApiClient(call, world.config.access_token)
            try:
                digest = run_flow(client, world.universe, tag="faults")
            finally:
                transport.close()
            return digest, injector, client.requests_sent
        finally:
            cluster.stop()

    clean_digest, _, clean_sent = one_run(False)
    chaos_digest, injector, chaos_sent = one_run(True)
    injected = {
        kind.value: count
        for kind, count in sorted(injector.injected.items(), key=lambda kv: kv[0].value)
    }
    return {
        "mode": "serve+faults",
        "n_workers": 1,
        "concurrency": None,
        "fault_rate": fault_rate,
        "fault_seed": fault_seed,
        "faults_injected": injected,
        "total_faults": injector.total_injected,
        "requests_clean": clean_sent,
        "requests_chaos": chaos_sent,
        "digest": clean_digest,
        "digest_match": chaos_digest == clean_digest,
    }


def bench_telemetry_overhead(
    world: SimulatedWorld,
    token: str,
    *,
    concurrency: int,
    requests: int,
    rounds: int = 5,
) -> dict:
    """RPS with the shared metrics plane on vs off (single worker).

    The sink's cost is per-request and per-worker (a couple of
    ``Struct.pack_into`` calls into this worker's own slot — ~2 µs per
    request measured in isolation), so one worker isolates it without
    SO_REUSEPORT scheduling noise.  Both clusters stay up for the whole
    phase and the hammer alternates between them round by round; the
    reported overhead is the **median of the per-round paired ratios**,
    so slow drift on a shared CI box — which hits both arms of a pair
    equally — cancels instead of masquerading as sink cost.
    """

    def start(telemetry: bool) -> GatewayCluster:
        cluster = GatewayCluster(
            world.universe,
            world.config,
            world.ear,
            workers=1,
            gateway=_UNTHROTTLED,
            accounts=(ACCOUNT,),
            telemetry=telemetry,
        )
        cluster.start()
        transport = rest_transport("127.0.0.1", cluster.port)
        run_flow(
            MarketingApiClient(transport, token),
            world.universe,
            tag=f"telemetry-{int(telemetry)}",
        )
        transport.close()
        return cluster

    # A round must be long enough that scheduler jitter on a shared CI
    # box averages out — sub-second rounds measure noise, not the sink
    # (which is a few µs per request).  A fixed request count can't
    # guarantee that across transport-speed changes, so calibrate: one
    # throwaway round measures the box's RPS and the request count is
    # scaled to keep every timed round at ~2 s of wall time.
    requests = max(requests, 1000)
    local = start(False)
    try:
        shared = start(True)
        try:
            calibration = bench_concurrency(
                local, token, concurrency, requests, cache_bust=True
            )["rps"]
            requests = max(requests, int(calibration * 2.0))
            local_rps, shared_rps = [], []
            for _ in range(rounds):
                # cache_bust: the sink's cost is per *served* request, so
                # the comparison must run the full handler path — cached
                # replies would shrink the denominator ~3x and triple the
                # apparent overhead relative to the pre-cache history.
                local_rps.append(
                    bench_concurrency(
                        local, token, concurrency, requests, cache_bust=True
                    )["rps"]
                )
                shared_rps.append(
                    bench_concurrency(
                        shared, token, concurrency, requests, cache_bust=True
                    )["rps"]
                )
        finally:
            shared.stop()
    finally:
        local.stop()

    rps_local = statistics.median(local_rps)
    rps_shared = statistics.median(shared_rps)
    overhead_pct = statistics.median(
        (l - s) / l * 100.0 for l, s in zip(local_rps, shared_rps)
    )
    return {
        "mode": "serve+telemetry",
        "n_workers": 1,
        "concurrency": concurrency,
        "rounds": rounds,
        "rps_worker_local": rps_local,
        "rps_shared_sink": rps_shared,
        "telemetry_overhead_pct": round(overhead_pct, 2),
    }


def _fetch_metrics(port: int) -> dict:
    """One plain GET /metrics (JSON snapshot) against a gateway port."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
    try:
        conn.request("GET", "/metrics")
        return json.loads(conn.getresponse().read().decode("utf-8"))
    finally:
        conn.close()


_STAGE_NAMES = ("route", "decode", "cache", "handler", "encode")


def bench_stages(
    world: SimulatedWorld, token: str, *, concurrency: int, requests: int
) -> dict:
    """Per-stage latency breakdown from the gateway's stage gauges.

    One single-worker cluster (worker-local metrics: the stage gauges
    are read straight from the serving worker's registry) takes one
    cache-busted round — every request runs route→decode→handler→encode
    — and one cached round — repeat GETs, so the cache stage sees hits.
    Mean per-stage time is ``seconds_total / requests`` per stage.
    """
    cluster = GatewayCluster(
        world.universe,
        world.config,
        world.ear,
        workers=1,
        gateway=_UNTHROTTLED,
        accounts=(ACCOUNT,),
        telemetry=False,
    )
    cluster.start()
    try:
        transport = rest_transport("127.0.0.1", cluster.port)
        run_flow(MarketingApiClient(transport, token), world.universe, tag="stages")
        transport.close()
        uncached = bench_concurrency(
            cluster, token, concurrency, requests, cache_bust=True
        )
        cached = bench_concurrency(cluster, token, concurrency, requests)
        snapshot = _fetch_metrics(cluster.port)
    finally:
        cluster.stop()

    def gauge(name: str, label: str) -> dict[str, float]:
        return {
            row["labels"][label]: row["value"]
            for row in snapshot["gauges"]
            if row["name"] == name
        }

    totals = gauge("gateway_stage_seconds_total", "stage")
    counts = gauge("gateway_stage_requests", "stage")
    cache = gauge("gateway_cache", "result")
    lookups = cache.get("hits", 0.0) + cache.get("misses", 0.0)
    record = {
        "mode": "serve+stages",
        "n_workers": 1,
        "concurrency": concurrency,
        "requests": uncached["requests"] + cached["requests"],
        "rps_uncached": uncached["rps"],
        "rps_cached": cached["rps"],
        "cache_hit_rate": (
            None if not lookups else round(cache.get("hits", 0.0) / lookups, 4)
        ),
    }
    for stage in _STAGE_NAMES:
        ran = counts.get(stage, 0.0)
        record[f"stage_{stage}_us"] = (
            None if not ran else round(totals.get(stage, 0.0) / ran * 1e6, 2)
        )
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--scale",
        choices=tuple(SCALES),
        default="xl",
        help="world size preset (xl is the 82 MiB shared-column tier)",
    )
    parser.add_argument(
        "--workers",
        type=_int_list,
        default=(1, 2),
        help="comma-separated worker counts to sweep (default 1,2)",
    )
    parser.add_argument(
        "--concurrency",
        type=_int_list,
        default=(1, 4, 16),
        help="comma-separated client-thread counts to sweep (default 1,4,16)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=200,
        help="requests per client thread at each concurrency level",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.15, help="chaos-phase fault rate"
    )
    parser.add_argument(
        "--fault-seed", type=int, default=13, help="chaos-phase fault stream seed"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink request counts (the CI cron tier; pair with --scale small)",
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="record memory/fault results without failing on them",
    )
    args = parser.parse_args(argv)
    requests = 30 if args.quick else args.requests
    serve_rounds = 1 if args.quick else 3
    worker_counts = tuple(sorted(set(args.workers)))
    concurrency_levels = tuple(sorted(set(args.concurrency)))

    config = SCALES[args.scale](args.seed)
    print(f"building world (registry {config.registry_size}) ...", flush=True)
    world = SimulatedWorld(config)
    token = config.access_token

    common = {
        "world": args.scale,
        "seed": args.seed,
        "n_users": len(world.universe.users),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    records: list[dict] = []
    failures: list[str] = []
    baseline_private_kb: int | None = None
    for n_workers in worker_counts:
        cluster = GatewayCluster(
            world.universe,
            config,
            world.ear,
            workers=n_workers,
            gateway=_UNTHROTTLED,
            accounts=(ACCOUNT,),
        )
        cluster.start()
        try:
            # One mutable flow warms real column-touching code paths
            # (matching + delivery) on whichever worker the connection
            # lands on, so the memory numbers reflect served traffic.
            transport = rest_transport("127.0.0.1", cluster.port)
            run_flow(
                MarketingApiClient(transport, token),
                world.universe,
                tag=f"warm-{n_workers}",
            )
            transport.close()
            sweep = []
            for concurrency in concurrency_levels:
                # Best-of-N: a 1-core box occasionally hands a whole
                # round to the wrong scheduling pattern and a single
                # cell craters 2-3x while its neighbours improve.  The
                # cell's capacity is the best *sustained* round (rps and
                # latency reported from the same round, so the record
                # stays internally consistent).
                result = max(
                    (
                        bench_concurrency(cluster, token, concurrency, requests)
                        for _ in range(serve_rounds)
                    ),
                    key=lambda r: r["rps"],
                )
                sweep.append(result)
                print(
                    f"workers={n_workers} concurrency={concurrency:>3}: "
                    f"{result['rps']:>8.1f} req/s  "
                    f"p50 {result['p50_ms']:.2f} ms  p99 {result['p99_ms']:.2f} ms",
                    flush=True,
                )
            memory = measure_memory(cluster, baseline_private_kb)
            if n_workers == worker_counts[0]:
                baseline_private_kb = memory["_private_total_kb"]
            memory.pop("_private_total_kb")
            if not memory["zero_copy_ok"]:
                failures.append(
                    f"workers={n_workers}: shared block not actually shared "
                    f"({memory})"
                )
            growth = memory["rss_growth_per_extra_worker_mib"]
            print(
                f"workers={n_workers} memory: universe {memory['universe_mib']} MiB "
                f"shared, max {memory['shm_private_max_mib']} MiB private in-block, "
                f"growth/extra-worker "
                f"{'n/a' if growth is None else f'{growth} MiB'}",
                flush=True,
            )
            for result in sweep:
                records.append(
                    {"mode": "serve", "n_workers": n_workers, **result, **common}
                )
            records.append(
                {
                    "mode": "serve+memory",
                    "n_workers": n_workers,
                    "concurrency": None,
                    **memory,
                    **common,
                }
            )
        finally:
            cluster.stop()

    fault_record = bench_faults(world, args.fault_rate, args.fault_seed)
    fault_record.update(common)
    records.append(fault_record)
    print(
        f"faults: {fault_record['total_faults']} injected at rate "
        f"{args.fault_rate}, digest match: {fault_record['digest_match']}",
        flush=True,
    )
    if not fault_record["digest_match"]:
        failures.append("chaos-run digest diverged from the fault-free run")

    telemetry_record = bench_telemetry_overhead(
        world,
        token,
        concurrency=min(4, max(concurrency_levels)),
        requests=requests,
    )
    telemetry_record.update(common)
    records.append(telemetry_record)
    overhead = telemetry_record["telemetry_overhead_pct"]
    print(
        f"telemetry: {telemetry_record['rps_shared_sink']:.1f} req/s shared sink "
        f"vs {telemetry_record['rps_worker_local']:.1f} worker-local "
        f"({overhead:+.2f}% overhead)",
        flush=True,
    )
    if overhead > 3.0 and not args.quick:
        failures.append(
            f"shared-sink telemetry costs {overhead:.2f}% RPS (budget: 3%)"
        )

    stages_record = bench_stages(
        world,
        token,
        concurrency=min(16, max(concurrency_levels)),
        requests=requests,
    )
    stages_record.update(common)
    records.append(stages_record)
    breakdown = "  ".join(
        f"{stage} {stages_record[f'stage_{stage}_us'] or 0:.0f}µs"
        for stage in _STAGE_NAMES
    )
    print(
        f"stages: {breakdown}  cache hit rate "
        f"{stages_record['cache_hit_rate']}  "
        f"({stages_record['rps_uncached']:.1f} req/s uncached, "
        f"{stages_record['rps_cached']:.1f} cached)",
        flush=True,
    )

    existing = []
    if OUT_PATH.exists():
        existing = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    existing.extend(records)
    OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")
    print(f"appended {len(records)} records to {OUT_PATH}")

    if failures and not args.no_check:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
