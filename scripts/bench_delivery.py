"""Benchmark the delivery engine: vectorized vs reference, seed-world scale.

Runs one full 24-hour delivery day (eight paired ads over a broad custom
audience, the shape of one Campaign-1 batch) in both engine modes on the
paper-scale world, and appends one JSON record per mode to
``BENCH_delivery.json`` at the repo root, so speedups are tracked across
commits:

    PYTHONPATH=src python scripts/bench_delivery.py

Each record carries the median wall time over ``--rounds`` runs, the slot
throughput, and the world scale.  The vectorized engine is expected to be
at least 10x faster than the reference loop (asserted unless
``--no-check``).

A third record times the vectorized engine with tracing enabled
(``mode="vectorized+traced"``) and carries ``trace_overhead_pct`` — the
observability layer's wall-time cost, targeted below 3%.  Pass
``--trace-out DIR`` to keep the traced run's journal + Chrome trace.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache import CODE_SALT
from repro.core.world import SimulatedWorld, WorldConfig
from repro.obs.tracer import tracing
from repro.geo import MobilityModel
from repro.images import ImageFeatures
from repro.platform import (
    AdAccount,
    AdCreative,
    AudienceStore,
    CompetitionModel,
    DeliveryEngine,
    Objective,
    TargetingSpec,
)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_delivery.json"
BENCH_SEED = 7


def build_day(world: SimulatedWorld):
    """The benchmark workload: 8 paired ads over a 20k-user audience."""
    store = AudienceStore(world.universe)
    users = world.universe.users[: min(20_000, len(world.universe.users))]
    audience = store.create_from_hashes("bench-all", [u.pii_hash for u in users])
    account = AdAccount(account_id="bench-delivery")
    campaign = account.create_campaign("c", Objective.TRAFFIC)
    ads = []
    for i in range(8):
        targeting = TargetingSpec(custom_audience_ids=(audience.audience_id,))
        adset = account.create_adset(campaign, f"as{i}", 300, targeting)
        creative = AdCreative(
            headline="h",
            body="b",
            destination_url="https://x.org",
            image=ImageFeatures(
                race_score=0.9 if i % 2 else 0.1, gender_score=0.5, age_years=30.0
            ),
        )
        ad = account.create_ad(adset, f"ad{i}", creative)
        ad.review_status = "APPROVED"
        ads.append(ad)

    def make_engine(mode: str) -> DeliveryEngine:
        return DeliveryEngine(
            world.universe,
            store,
            account,
            ear=world.ear,
            engagement=world.engagement,
            competition=CompetitionModel(np.random.default_rng(51)),
            mobility=MobilityModel(np.random.default_rng(52)),
            rng=np.random.default_rng(53),
            mode=mode,
        )

    return ads, make_engine


def bench_mode(mode: str, ads, make_engine, rounds: int) -> dict:
    """Median wall time of one delivery day in ``mode`` over ``rounds``."""
    times = []
    slots = 0
    impressions = 0
    for _ in range(rounds):
        engine = make_engine(mode)
        start = time.perf_counter()
        result = engine.run(ads)
        times.append(time.perf_counter() - start)
        slots = result.total_slots
        impressions = result.insights.total_impressions()
    median_s = statistics.median(times)
    return {
        "mode": mode,
        "median_ms": round(median_s * 1000.0, 2),
        "slots": slots,
        "slots_per_sec": round(slots / median_s, 1),
        "impressions": impressions,
        "rounds": rounds,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rounds", type=int, default=3, help="runs per mode (median)")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--small", action="store_true", help="use the small test world (quick check)"
    )
    parser.add_argument(
        "--no-check", action="store_true", help="skip the >=10x speedup assertion"
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write the traced run's journal.jsonl + trace.json here",
    )
    args = parser.parse_args(argv)

    config = WorldConfig.small(args.seed) if args.small else WorldConfig.paper(args.seed)
    print(f"building world (registry {config.registry_size}) ...", flush=True)
    world = SimulatedWorld(config)
    ads, make_engine = build_day(world)

    records = []
    for mode in ("reference", "vectorized"):
        # Reference is the slow baseline: one round is plenty.
        rounds = 1 if mode == "reference" else args.rounds
        record = bench_mode(mode, ads, make_engine, rounds)
        record.update(
            {
                "world": "small" if args.small else "paper",
                "seed": args.seed,
                "n_users": len(world.universe.users),
                "n_ads": len(ads),
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            }
        )
        records.append(record)
        print(
            f"{mode:>10}: {record['median_ms']:.1f} ms "
            f"({record['slots_per_sec']:.0f} slots/s, "
            f"{record['impressions']} impressions)",
            flush=True,
        )

    reference_ms = records[0]["median_ms"]
    vectorized_ms = records[1]["median_ms"]
    speedup = reference_ms / vectorized_ms
    print(f"speedup: {speedup:.1f}x")
    for record in records:
        record["speedup_vs_reference"] = round(reference_ms / record["median_ms"], 2)

    # Tracing overhead: the same vectorized day with the tracer on.
    # Rounds are interleaved (off, on, off, on, ...) so cache/allocator
    # drift between phases cancels instead of biasing the comparison.
    off_times, on_times = [], []
    n_spans_per_run = 0
    for _ in range(max(args.rounds, 3)):
        engine = make_engine("vectorized")
        start = time.perf_counter()
        engine.run(ads)
        off_times.append(time.perf_counter() - start)
        engine = make_engine("vectorized")
        with tracing() as tracer:
            start = time.perf_counter()
            engine.run(ads)
            on_times.append(time.perf_counter() - start)
            n_spans_per_run = len(tracer.drain())
    off_ms = statistics.median(off_times) * 1000.0
    on_ms = statistics.median(on_times) * 1000.0
    overhead_pct = (on_ms - off_ms) / off_ms * 100.0
    traced = {
        "mode": "vectorized+traced",
        "median_ms": round(on_ms, 2),
        "untraced_median_ms": round(off_ms, 2),
        "trace_overhead_pct": round(overhead_pct, 2),
        "spans_per_run": n_spans_per_run,
        "rounds": max(args.rounds, 3),
        "world": records[1]["world"],
        "seed": args.seed,
        "n_users": records[1]["n_users"],
        "n_ads": len(ads),
        "timestamp": records[1]["timestamp"],
        "speedup_vs_reference": round(reference_ms / on_ms, 2),
    }
    records.append(traced)
    print(
        f"{'traced':>10}: {on_ms:.1f} ms vs {off_ms:.1f} ms untraced "
        f"({n_spans_per_run} spans, overhead {overhead_pct:+.1f}%, target < 3%)"
    )

    if args.trace_out is not None:
        from repro.obs.journal import RunJournal, RunManifest, write_run_artifacts

        with tracing() as tracer:
            make_engine("vectorized").run(ads)
            spans = tracer.drain()
        out = Path(args.trace_out)
        with RunJournal(out / "journal.jsonl") as journal:
            journal.event("run", command="bench_delivery", n_ads=len(ads))
            n_spans = journal.spans(spans, pid=os.getpid(), job=0)
        manifest = RunManifest(
            command="bench_delivery --trace-out",
            code_salt=CODE_SALT,
            seeds=(args.seed,),
            world_fingerprints=(world.fingerprint,),
            n_spans=n_spans,
        )
        paths = write_run_artifacts(out, manifest=manifest, journal_path=out / "journal.jsonl")
        print(f"wrote traced-run artifacts to {paths['trace'].parent}")

    existing = []
    if OUT_PATH.exists():
        existing = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    existing.extend(records)
    OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")
    print(f"appended {len(records)} records to {OUT_PATH}")

    if not args.no_check and speedup < 10.0:
        print("FAIL: vectorized engine is less than 10x the reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
