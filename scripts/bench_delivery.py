"""Benchmark the delivery engine: vectorized vs reference, paired vs many.

Runs one full 24-hour delivery day and appends one JSON record per
(mode, workers) to ``BENCH_delivery.json`` at the repo root, so speedups
are tracked across commits:

    PYTHONPATH=src python scripts/bench_delivery.py
    PYTHONPATH=src python scripts/bench_delivery.py --preset many --workers 4

Two campaign presets:

* ``paired`` (default) — eight paired ads over a broad 20k-user custom
  audience, the shape of one Campaign-1 batch; runs the reference oracle
  too and asserts the vectorized engine is at least 10x faster (unless
  ``--no-check``), plus a ``vectorized+traced`` record carrying
  ``trace_overhead_pct`` (target < 3%).
* ``many`` — a heterogeneous portfolio (``--ads``, default 128, budgets
  40–360, four overlapping audiences, mixed age caps and creatives), the
  many-campaign regime of Ali et al.; vectorized only (the reference
  loop at 128 ads is minutes, not seconds).

Each record carries the median wall time over ``--rounds`` runs, the slot
throughput, ``n_ads``, ``n_workers`` and ``slots_per_sec_per_core``
(throughput normalised by worker threads), so the many-campaign trajectory
stays comparable across machines.  ``--workers N`` benches the parallel
chunk scheduler next to the sequential engine.  ``--quick`` (used by the
weekly CI job) runs one round and skips the trace-overhead phase.  Pass
``--trace-out DIR`` to keep a traced run's journal + Chrome trace.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache import CODE_SALT
from repro.core.world import SimulatedWorld, WorldConfig
from repro.obs.tracer import tracing
from repro.geo import MobilityModel
from repro.images import ImageFeatures
from repro.platform import (
    AdAccount,
    AdCreative,
    AudienceStore,
    CompetitionModel,
    DeliveryEngine,
    Objective,
    TargetingSpec,
)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_delivery.json"
BENCH_SEED = 7

SCALES = {
    "small": WorldConfig.small,
    "paper": WorldConfig.paper,
    "xl": WorldConfig.xl,
}


def _make_engine_factory(world: SimulatedWorld, store: AudienceStore, account: AdAccount):
    def make_engine(mode: str, workers: int = 1) -> DeliveryEngine:
        return DeliveryEngine(
            world.universe,
            store,
            account,
            ear=world.ear,
            engagement=world.engagement,
            competition=CompetitionModel(np.random.default_rng(51)),
            mobility=MobilityModel(np.random.default_rng(52)),
            rng=np.random.default_rng(53),
            mode=mode,
            workers=workers,
        )

    return make_engine


def build_paired(world: SimulatedWorld):
    """The classic workload: 8 paired ads over a 20k-user audience."""
    store = AudienceStore(world.universe)
    users = world.universe.users[: min(20_000, len(world.universe.users))]
    audience = store.create_from_hashes("bench-all", [u.pii_hash for u in users])
    account = AdAccount(account_id="bench-delivery")
    campaign = account.create_campaign("c", Objective.TRAFFIC)
    ads = []
    for i in range(8):
        targeting = TargetingSpec(custom_audience_ids=(audience.audience_id,))
        adset = account.create_adset(campaign, f"as{i}", 300, targeting)
        creative = AdCreative(
            headline="h",
            body="b",
            destination_url="https://x.org",
            image=ImageFeatures(
                race_score=0.9 if i % 2 else 0.1, gender_score=0.5, age_years=30.0
            ),
        )
        ad = account.create_ad(adset, f"ad{i}", creative)
        ad.review_status = "APPROVED"
        ads.append(ad)
    return ads, _make_engine_factory(world, store, account)


def build_many(world: SimulatedWorld, n_ads: int):
    """The many-campaign workload: a heterogeneous ``n_ads`` portfolio.

    Budgets span 40–360 dollars, targeting cycles through four
    overlapping custom audiences and mixed age caps, and creatives sweep
    the race/gender/age feature grid — the competitive regime where
    per-ad Python bookkeeping used to dominate the day.
    """
    store = AudienceStore(world.universe)
    users = world.universe.users
    n = len(users)
    slices = [slice(0, n), slice(0, n // 2), slice(n // 4, n), slice(0, 3 * n // 4)]
    audiences = [
        store.create_from_hashes(
            f"bench-many-{j}", [u.pii_hash for u in users[sl] if u.pii_hash]
        )
        for j, sl in enumerate(slices)
    ]
    account = AdAccount(account_id="bench-delivery-many")
    campaign = account.create_campaign("c", Objective.TRAFFIC)
    budgets = [40, 90, 180, 360]
    age_caps = [None, 54, 34, None]
    ads = []
    for i in range(n_ads):
        targeting = TargetingSpec(
            custom_audience_ids=(audiences[i % 4].audience_id,),
            age_max=age_caps[i % 4],
        )
        adset = account.create_adset(campaign, f"as{i}", budgets[i % 4], targeting)
        creative = AdCreative(
            headline="h",
            body="b",
            destination_url="https://x.org",
            image=ImageFeatures(
                race_score=(i % 16) / 15.0,
                gender_score=(i % 8) / 7.0,
                age_years=22.0 + (i % 5) * 9,
            ),
        )
        ad = account.create_ad(adset, f"ad{i}", creative)
        ad.review_status = "APPROVED"
        ads.append(ad)
    return ads, _make_engine_factory(world, store, account)


def bench_mode(mode: str, ads, make_engine, rounds: int, workers: int = 1) -> dict:
    """Median wall time of one delivery day in ``mode`` over ``rounds``."""
    times = []
    slots = 0
    impressions = 0
    for _ in range(rounds):
        engine = make_engine(mode, workers)
        start = time.perf_counter()
        result = engine.run(ads)
        times.append(time.perf_counter() - start)
        slots = result.total_slots
        impressions = result.insights.total_impressions()
    median_s = statistics.median(times)
    return {
        "mode": mode,
        "median_ms": round(median_s * 1000.0, 2),
        "slots": slots,
        "slots_per_sec": round(slots / median_s, 1),
        "slots_per_sec_per_core": round(slots / median_s / workers, 1),
        "impressions": impressions,
        "rounds": rounds,
        "n_workers": workers,
    }


def _backfill(records: list[dict]) -> None:
    """Give historical records the current schema (nulls, not guesses)."""
    for record in records:
        record.setdefault("n_workers", None)
        record.setdefault("slots_per_sec_per_core", None)
        record.setdefault("preset", None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rounds", type=int, default=3, help="runs per mode (median)")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--preset",
        choices=("paired", "many"),
        default="paired",
        help="campaign portfolio: 8 paired ads, or a heterogeneous fleet",
    )
    parser.add_argument(
        "--ads", type=int, default=128, help="fleet size for --preset many"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="also bench the parallel chunk scheduler at this pool size",
    )
    parser.add_argument(
        "--scale",
        choices=tuple(SCALES),
        default="paper",
        help="world size preset",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="alias for --scale small (kept for older invocations)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one round, no trace-overhead phase (the CI cron tier)",
    )
    parser.add_argument(
        "--no-check", action="store_true", help="skip the >=10x speedup assertion"
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write the traced run's journal.jsonl + trace.json here",
    )
    args = parser.parse_args(argv)
    scale = "small" if args.small else args.scale
    rounds = 1 if args.quick else args.rounds

    config = SCALES[scale](args.seed)
    print(f"building world (registry {config.registry_size}) ...", flush=True)
    world = SimulatedWorld(config)
    if args.preset == "many":
        ads, make_engine = build_many(world, args.ads)
        # The reference loop is O(slots × ads) Python; at 128 ads it is
        # the thing this preset exists to avoid.
        modes = ["vectorized"]
    else:
        ads, make_engine = build_paired(world)
        modes = ["reference", "vectorized"]

    records = []
    common = {
        "preset": args.preset,
        "world": scale,
        "seed": args.seed,
        "n_users": len(world.universe.users),
        "n_ads": len(ads),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    for mode in modes:
        # Reference is the slow baseline: one round is plenty.
        mode_rounds = 1 if mode == "reference" else rounds
        record = bench_mode(mode, ads, make_engine, mode_rounds)
        record.update(common)
        records.append(record)
        print(
            f"{mode:>10}: {record['median_ms']:.1f} ms "
            f"({record['slots_per_sec']:.0f} slots/s, "
            f"{record['impressions']} impressions)",
            flush=True,
        )
    if args.workers > 1:
        record = bench_mode("vectorized", ads, make_engine, rounds, args.workers)
        record.update(common)
        records.append(record)
        print(
            f"{'vectorized':>10}: {record['median_ms']:.1f} ms "
            f"({record['slots_per_sec']:.0f} slots/s over {args.workers} workers, "
            f"{record['slots_per_sec_per_core']:.0f} slots/s/core)",
            flush=True,
        )

    speedup = None
    if "reference" in modes:
        reference_ms = records[0]["median_ms"]
        vectorized_ms = records[1]["median_ms"]
        speedup = reference_ms / vectorized_ms
        print(f"speedup: {speedup:.1f}x")
        for record in records:
            record["speedup_vs_reference"] = round(
                reference_ms / record["median_ms"], 2
            )

    # Tracing overhead: the same vectorized day with the tracer on.
    # Rounds are interleaved (off, on, off, on, ...) so cache/allocator
    # drift between phases cancels instead of biasing the comparison.
    if not args.quick:
        off_times, on_times = [], []
        n_spans_per_run = 0
        for _ in range(max(rounds, 3)):
            engine = make_engine("vectorized")
            start = time.perf_counter()
            engine.run(ads)
            off_times.append(time.perf_counter() - start)
            engine = make_engine("vectorized")
            with tracing() as tracer:
                start = time.perf_counter()
                engine.run(ads)
                on_times.append(time.perf_counter() - start)
                n_spans_per_run = len(tracer.drain())
        off_ms = statistics.median(off_times) * 1000.0
        on_ms = statistics.median(on_times) * 1000.0
        overhead_pct = (on_ms - off_ms) / off_ms * 100.0
        traced = {
            "mode": "vectorized+traced",
            "median_ms": round(on_ms, 2),
            "untraced_median_ms": round(off_ms, 2),
            "trace_overhead_pct": round(overhead_pct, 2),
            "spans_per_run": n_spans_per_run,
            "rounds": max(rounds, 3),
            "n_workers": 1,
            "slots_per_sec_per_core": None,
        }
        traced.update(common)
        if speedup is not None:
            traced["speedup_vs_reference"] = round(records[0]["median_ms"] / on_ms, 2)
        records.append(traced)
        print(
            f"{'traced':>10}: {on_ms:.1f} ms vs {off_ms:.1f} ms untraced "
            f"({n_spans_per_run} spans, overhead {overhead_pct:+.1f}%, target < 3%)"
        )

    if args.trace_out is not None:
        from repro.obs.journal import RunJournal, RunManifest, write_run_artifacts

        with tracing() as tracer:
            make_engine("vectorized", args.workers).run(ads)
            spans = tracer.drain()
        out = Path(args.trace_out)
        with RunJournal(out / "journal.jsonl") as journal:
            journal.event("run", command="bench_delivery", n_ads=len(ads))
            n_spans = journal.spans(spans, pid=os.getpid(), job=0)
        manifest = RunManifest(
            command="bench_delivery --trace-out",
            code_salt=CODE_SALT,
            seeds=(args.seed,),
            world_fingerprints=(world.fingerprint,),
            n_spans=n_spans,
        )
        paths = write_run_artifacts(out, manifest=manifest, journal_path=out / "journal.jsonl")
        print(f"wrote traced-run artifacts to {paths['trace'].parent}")

    existing = []
    if OUT_PATH.exists():
        existing = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    _backfill(existing)
    existing.extend(records)
    OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")
    print(f"appended {len(records)} records to {OUT_PATH}")

    if speedup is not None and not args.no_check and speedup < 10.0:
        print("FAIL: vectorized engine is less than 10x the reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
