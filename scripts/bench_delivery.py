"""Benchmark the delivery engine: vectorized vs reference, seed-world scale.

Runs one full 24-hour delivery day (eight paired ads over a broad custom
audience, the shape of one Campaign-1 batch) in both engine modes on the
paper-scale world, and appends one JSON record per mode to
``BENCH_delivery.json`` at the repo root, so speedups are tracked across
commits:

    PYTHONPATH=src python scripts/bench_delivery.py

Each record carries the median wall time over ``--rounds`` runs, the slot
throughput, and the world scale.  The vectorized engine is expected to be
at least 10x faster than the reference loop (asserted unless
``--no-check``).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.world import SimulatedWorld, WorldConfig
from repro.geo import MobilityModel
from repro.images import ImageFeatures
from repro.platform import (
    AdAccount,
    AdCreative,
    AudienceStore,
    CompetitionModel,
    DeliveryEngine,
    Objective,
    TargetingSpec,
)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_delivery.json"
BENCH_SEED = 7


def build_day(world: SimulatedWorld):
    """The benchmark workload: 8 paired ads over a 20k-user audience."""
    store = AudienceStore(world.universe)
    users = world.universe.users[: min(20_000, len(world.universe.users))]
    audience = store.create_from_hashes("bench-all", [u.pii_hash for u in users])
    account = AdAccount(account_id="bench-delivery")
    campaign = account.create_campaign("c", Objective.TRAFFIC)
    ads = []
    for i in range(8):
        targeting = TargetingSpec(custom_audience_ids=(audience.audience_id,))
        adset = account.create_adset(campaign, f"as{i}", 300, targeting)
        creative = AdCreative(
            headline="h",
            body="b",
            destination_url="https://x.org",
            image=ImageFeatures(
                race_score=0.9 if i % 2 else 0.1, gender_score=0.5, age_years=30.0
            ),
        )
        ad = account.create_ad(adset, f"ad{i}", creative)
        ad.review_status = "APPROVED"
        ads.append(ad)

    def make_engine(mode: str) -> DeliveryEngine:
        return DeliveryEngine(
            world.universe,
            store,
            account,
            ear=world.ear,
            engagement=world.engagement,
            competition=CompetitionModel(np.random.default_rng(51)),
            mobility=MobilityModel(np.random.default_rng(52)),
            rng=np.random.default_rng(53),
            mode=mode,
        )

    return ads, make_engine


def bench_mode(mode: str, ads, make_engine, rounds: int) -> dict:
    """Median wall time of one delivery day in ``mode`` over ``rounds``."""
    times = []
    slots = 0
    impressions = 0
    for _ in range(rounds):
        engine = make_engine(mode)
        start = time.perf_counter()
        result = engine.run(ads)
        times.append(time.perf_counter() - start)
        slots = result.total_slots
        impressions = result.insights.total_impressions()
    median_s = statistics.median(times)
    return {
        "mode": mode,
        "median_ms": round(median_s * 1000.0, 2),
        "slots": slots,
        "slots_per_sec": round(slots / median_s, 1),
        "impressions": impressions,
        "rounds": rounds,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rounds", type=int, default=3, help="runs per mode (median)")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument(
        "--small", action="store_true", help="use the small test world (quick check)"
    )
    parser.add_argument(
        "--no-check", action="store_true", help="skip the >=10x speedup assertion"
    )
    args = parser.parse_args(argv)

    config = WorldConfig.small(args.seed) if args.small else WorldConfig.paper(args.seed)
    print(f"building world (registry {config.registry_size}) ...", flush=True)
    world = SimulatedWorld(config)
    ads, make_engine = build_day(world)

    records = []
    for mode in ("reference", "vectorized"):
        # Reference is the slow baseline: one round is plenty.
        rounds = 1 if mode == "reference" else args.rounds
        record = bench_mode(mode, ads, make_engine, rounds)
        record.update(
            {
                "world": "small" if args.small else "paper",
                "seed": args.seed,
                "n_users": len(world.universe.users),
                "n_ads": len(ads),
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            }
        )
        records.append(record)
        print(
            f"{mode:>10}: {record['median_ms']:.1f} ms "
            f"({record['slots_per_sec']:.0f} slots/s, "
            f"{record['impressions']} impressions)",
            flush=True,
        )

    reference_ms = records[0]["median_ms"]
    vectorized_ms = records[1]["median_ms"]
    speedup = reference_ms / vectorized_ms
    print(f"speedup: {speedup:.1f}x")
    for record in records:
        record["speedup_vs_reference"] = round(reference_ms / record["median_ms"], 2)

    existing = []
    if OUT_PATH.exists():
        existing = json.loads(OUT_PATH.read_text(encoding="utf-8"))
    existing.extend(records)
    OUT_PATH.write_text(json.dumps(existing, indent=2) + "\n", encoding="utf-8")
    print(f"appended {len(records)} records to {OUT_PATH}")

    if not args.no_check and speedup < 10.0:
        print("FAIL: vectorized engine is less than 10x the reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
