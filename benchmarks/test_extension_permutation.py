"""Extension — design-based (permutation) inference robustness check.

The paper's significance claims rest on OLS t-tests over ~100 image-level
observations.  Because the experimenter assigned the implied identities,
labels are exchangeable under the null and a permutation test needs no
distributional assumptions.  This bench re-tests the headline race effect
of Campaign 1 by permutation and checks it agrees with the OLS verdict.
"""

import numpy as np
from conftest import BENCH_SEED, save_text

from repro.stats.permutation import permutation_test_mean_difference
from repro.types import Race


def test_extension_permutation_inference(benchmark, campaign1, results_dir):
    outcomes = np.array([d.fraction_black for d in campaign1.deliveries])
    treated = np.array(
        [d.spec.race is Race.BLACK for d in campaign1.deliveries]
    )

    def run():
        return permutation_test_mean_difference(
            outcomes, treated, np.random.default_rng(BENCH_SEED), n_permutations=5000
        )

    diff, p_perm = benchmark.pedantic(run, rounds=1, iterations=1)
    p_ols = campaign1.regressions.pct_black.p_value("Black")
    text = (
        "Extension: permutation robustness check of the Campaign-1 race "
        "effect\n"
        f"  mean difference (Black-implied - white-implied): {diff:+.4f}\n"
        f"  permutation p-value (5000 resamples): {p_perm:.5f}\n"
        f"  OLS p-value (Table 4a Black term):    {p_ols:.3g}"
    )
    print("\n" + text)
    save_text(results_dir, "extension_permutation.txt", text)

    # Both inference routes must call the headline effect significant.
    assert diff > 0.05
    assert p_perm < 0.001
    assert p_ols < 0.001
