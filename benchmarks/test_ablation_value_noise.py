"""Ablation — idiosyncratic ranking noise.

The delivery engine perturbs total values per (slot, ad) to stand in for
the per-user features a cell-level model cannot represent.  With the noise
removed the argmax allocation amplifies every cell-level difference into
near-total separation — far beyond the graded skews the paper measures.
"""

import dataclasses

import numpy as np
from conftest import save_text

from repro.core.experiments import run_campaign1, stock_specs
from repro.core.world import SimulatedWorld, WorldConfig
from repro.types import Race


def _race_gap(value_noise_sigma: float, seed: int = 35) -> float:
    config = dataclasses.replace(
        WorldConfig.small(seed=seed), value_noise_sigma=value_noise_sigma
    )
    world = SimulatedWorld(config)
    result = run_campaign1(world, specs=stock_specs(world, per_cell=2))
    black = np.mean(
        [d.fraction_black for d in result.deliveries if d.spec.race is Race.BLACK]
    )
    white = np.mean(
        [d.fraction_black for d in result.deliveries if d.spec.race is Race.WHITE]
    )
    return float(black - white)


def test_ablation_value_noise(benchmark, results_dir):
    def run_all():
        return {sigma: _race_gap(sigma) for sigma in (0.0, 0.9, 2.0)}

    gaps = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = "Ablation: race-delivery gap by ranking-noise sigma\n" + "\n".join(
        f"  sigma={sigma}: {gap:+.3f}" for sigma, gap in gaps.items()
    )
    print("\n" + text)
    save_text(results_dir, "ablation_value_noise.txt", text)

    # Deterministic ranking over-separates; heavy noise washes the skew out.
    assert gaps[0.0] > gaps[0.9] > gaps[2.0]
    assert gaps[0.0] > 0.25
    assert gaps[2.0] < 0.25
