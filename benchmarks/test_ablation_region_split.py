"""Ablation — state-level vs DMA-level region splits.

The paper's §3.3 defends targeting whole states: <1% of impressions leak
out of state, versus the >10% out-of-DMA leakage Ali et al. saw with
DMA-level designs.  This bench measures both leak rates in the mobility
model at the paper's scale.
"""

import numpy as np
from conftest import BENCH_SEED, save_text

from repro.geo import MobilityModel
from repro.geo.regions import DMA_BY_STATE
from repro.types import State


def test_ablation_region_granularity(benchmark, results_dir):
    model = MobilityModel(np.random.default_rng(BENCH_SEED))

    def measure(n: int = 40_000):
        out_of_state = 0
        out_of_dma = 0
        per_state = n // 2
        for state in (State.FL, State.NC):
            home_dma = DMA_BY_STATE[state][0]
            for location in model.locate_many(state, home_dma, per_state):
                if location.state is not state:
                    out_of_state += 1
                elif location.dma != home_dma:
                    out_of_dma += 1
        return out_of_state / n, (out_of_dma + out_of_state) / n

    state_leak, dma_leak = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = (
        "Ablation: region-split leakage (fraction of impressions outside "
        "the targeted region)\n"
        f"  state-level split leak: {state_leak:.3%}  (paper: <1%)\n"
        f"  DMA-level split leak:   {dma_leak:.3%}  (prior work: >10%)"
    )
    print("\n" + text)
    save_text(results_dir, "ablation_region_split.txt", text)

    assert state_leak < 0.01
    assert dma_leak > 0.10
    assert dma_leak > 10 * state_leak
