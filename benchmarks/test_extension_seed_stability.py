"""Extension — seed stability of the headline findings.

A measurement reproduction should not hinge on one lucky seed.  This
bench rebuilds the whole world (registries, users, trained EAR, delivery)
under five different seeds, runs the reduced Campaign-1 design in each,
and checks that the headline effects keep their sign and significance in
every replicate.

The replicates go through :func:`repro.core.scheduler.run_seed_sweep`:
``pytest benchmarks/ --jobs 4`` fans the five worlds out across worker
processes, and the scheduler's determinism contract (pinned by
``tests/core/test_scheduler.py``) guarantees the rows are identical to a
serial run.
"""

import numpy as np
from conftest import save_text

from repro.core.scheduler import run_seed_sweep

SEEDS = (101, 202, 303, 404, 505)


def test_extension_seed_stability(benchmark, results_dir, jobs):
    def run_all():
        return run_seed_sweep(SEEDS, campaign="stability", scale="small", jobs=jobs)

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["Extension: headline coefficients across 5 world seeds",
             "  seed | Black->%Black | Child->%Female | Elderly->%65+"]
    for row in rows:
        lines.append(
            f"  {row['seed']:>4} | {row['black']:+.3f} (p={row['black_p']:.1e}) "
            f"| {row['child']:+.3f} (p={row['child_p']:.1e}) "
            f"| {row['elderly']:+.3f} (p={row['elderly_p']:.1e})"
        )
    blacks = [row["black"] for row in rows]
    lines.append(
        f"  Black coefficient: mean {np.mean(blacks):+.3f}, sd {np.std(blacks):.3f}"
    )
    text = "\n".join(lines)
    print("\n" + text)
    save_text(results_dir, "extension_seed_stability.txt", text)

    # The race effect is the paper's headline and must replicate exactly:
    # positive and p<0.001 in every world.
    for row in rows:
        assert row["black"] > 0.03 and row["black_p"] < 0.001, row["seed"]
    # The child and age effects are real but an order of magnitude
    # smaller; at this reduced scale (12 child / 12 elderly images per
    # replicate) individual worlds are noisy, so the replication claim is
    # directional: positive in a clear majority of worlds and positive on
    # average.
    for key in ("child", "elderly"):
        values = [row[key] for row in rows]
        assert sum(1 for v in values if v > 0.0) >= 3, key
        assert np.mean(values) > 0.0, key
    # Effect sizes are stable, not just signed: spread well below the mean.
    assert np.std(blacks) < 0.6 * np.mean(blacks)
