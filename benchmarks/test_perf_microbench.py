"""Performance microbenchmarks of the delivery hot path.

Unlike the table/figure benches (which regenerate the paper and are timed
incidentally), these measure the simulator's own hot operations — useful
when changing the auction, the EAR featurisation, or the pacing loop.
"""

import numpy as np
import pytest

from repro.images.features import ImageFeatures
from repro.platform.auction import run_auction
from repro.platform.cells import N_GT_CELLS, N_OBSERVED_CELLS
from repro.platform.pacing import PacingController


@pytest.fixture(scope="module")
def candidate_values():
    rng = np.random.default_rng(0)
    values = rng.uniform(0.001, 0.03, size=200)
    values[rng.random(200) < 0.1] = float("-inf")
    return values


def test_perf_auction(benchmark, candidate_values):
    """One slot auction over 200 candidate ads."""
    outcome = benchmark(run_auction, candidate_values, 0.011)
    assert outcome.winning_value >= 0.001


def test_perf_ear_score_vector(benchmark, world):
    """EAR scoring of one creative over all observed cells."""
    image = ImageFeatures(race_score=0.7, gender_score=0.3, age_years=35.0)
    scores = benchmark(world.ear.score_vector, image, "nurse")
    assert scores.shape == (N_OBSERVED_CELLS,)


def test_perf_engagement_vector(benchmark, world):
    """Ground-truth probabilities over all cells (delivery setup cost)."""
    image = ImageFeatures(race_score=0.7, gender_score=0.3, age_years=35.0)
    probabilities = benchmark(world.engagement.probability_vector, image, None)
    assert probabilities.shape == (N_GT_CELLS,)


def test_perf_pacing_control(benchmark):
    """One pacing control sweep over 200 registered ads."""
    pacing = PacingController()
    for i in range(200):
        pacing.register(f"ad{i}", 2.0)
        pacing.record_spend(f"ad{i}", 0.5)

    def sweep():
        pacing.control_all(12.0)
        return pacing.multiplier("ad0")

    assert benchmark(sweep) > 0.0
