"""Performance microbenchmarks of the delivery hot path.

Unlike the table/figure benches (which regenerate the paper and are timed
incidentally), these measure the simulator's own hot operations — useful
when changing the auction, the EAR featurisation, or the pacing loop.
"""

import numpy as np
import pytest

from repro.geo import MobilityModel
from repro.images.features import ImageFeatures
from repro.platform import (
    AdAccount,
    AdCreative,
    AudienceStore,
    CompetitionModel,
    DeliveryEngine,
    Objective,
    TargetingSpec,
)
from repro.platform.auction import run_auction, run_auctions_batch
from repro.platform.cells import N_GT_CELLS, N_OBSERVED_CELLS
from repro.platform.pacing import PacingController


@pytest.fixture(scope="module")
def candidate_values():
    rng = np.random.default_rng(0)
    values = rng.uniform(0.001, 0.03, size=200)
    values[rng.random(200) < 0.1] = float("-inf")
    return values


def test_perf_auction(benchmark, candidate_values):
    """One slot auction over 200 candidate ads."""
    outcome = benchmark(run_auction, candidate_values, 0.011)
    assert outcome.winning_value >= 0.001


def test_perf_auction_batch(benchmark):
    """One chunk of 4096 slot auctions over 20 candidate ads."""
    rng = np.random.default_rng(1)
    values = rng.uniform(0.001, 0.03, size=(20, 4096))
    values[rng.random(values.shape) < 0.2] = float("-inf")
    bids = rng.uniform(0.005, 0.02, size=4096)
    batch = benchmark(run_auctions_batch, values, bids)
    assert batch.n_slots == 4096
    assert (batch.prices >= 0).all()


def test_perf_ear_score_vector(benchmark, world):
    """EAR scoring of one creative over all observed cells."""
    image = ImageFeatures(race_score=0.7, gender_score=0.3, age_years=35.0)
    scores = benchmark(world.ear.score_vector, image, "nurse")
    assert scores.shape == (N_OBSERVED_CELLS,)


def test_perf_engagement_vector(benchmark, world):
    """Ground-truth probabilities over all cells (delivery setup cost)."""
    image = ImageFeatures(race_score=0.7, gender_score=0.3, age_years=35.0)
    probabilities = benchmark(world.engagement.probability_vector, image, None)
    assert probabilities.shape == (N_GT_CELLS,)


@pytest.fixture(scope="module")
def delivery_day(world):
    """An engine factory for one full paper-scale delivery day.

    Eight paired ads (four Black-implied, four white-implied portraits)
    over a broad custom audience — the shape of one Campaign-1 batch.
    """
    store = AudienceStore(world.universe)
    users = world.universe.users[: min(20_000, len(world.universe.users))]
    audience = store.create_from_hashes("bench-all", [u.pii_hash for u in users])
    account = AdAccount(account_id="bench-delivery")
    campaign = account.create_campaign("c", Objective.TRAFFIC)
    ads = []
    for i in range(8):
        targeting = TargetingSpec(custom_audience_ids=(audience.audience_id,))
        adset = account.create_adset(campaign, f"as{i}", 300, targeting)
        creative = AdCreative(
            headline="h",
            body="b",
            destination_url="https://x.org",
            image=ImageFeatures(
                race_score=0.9 if i % 2 else 0.1, gender_score=0.5, age_years=30.0
            ),
        )
        ad = account.create_ad(adset, f"ad{i}", creative)
        ad.review_status = "APPROVED"
        ads.append(ad)

    def make_engine(mode: str) -> DeliveryEngine:
        return DeliveryEngine(
            world.universe,
            store,
            account,
            ear=world.ear,
            engagement=world.engagement,
            competition=CompetitionModel(np.random.default_rng(51)),
            mobility=MobilityModel(np.random.default_rng(52)),
            rng=np.random.default_rng(53),
            mode=mode,
        )

    return ads, make_engine


def test_perf_delivery_day_vectorized(benchmark, delivery_day):
    """One full 24-hour delivery day, chunked batch engine."""
    ads, make_engine = delivery_day
    engine = make_engine("vectorized")
    result = benchmark.pedantic(engine.run, args=(ads,), rounds=3, iterations=1)
    assert result.insights.total_impressions() > 0
    assert result.total_slots > 0


def test_perf_delivery_day_reference(benchmark, delivery_day):
    """The same delivery day on the per-slot reference loop (the baseline
    the vectorized engine is measured against; see scripts/bench_delivery.py)."""
    ads, make_engine = delivery_day
    engine = make_engine("reference")
    result = benchmark.pedantic(engine.run, args=(ads,), rounds=1, iterations=1)
    assert result.insights.total_impressions() > 0
    assert result.total_slots > 0


def test_perf_pacing_control(benchmark):
    """One pacing control sweep over 200 registered ads."""
    pacing = PacingController()
    for i in range(200):
        pacing.register(f"ad{i}", 2.0)
        pacing.record_spend(f"ad{i}", 0.5)

    def sweep():
        pacing.control_all(12.0)
        return pacing.multiplier("ad0")

    assert benchmark(sweep) > 0.0
