"""Table 1 — stratified voter sample sizes per age range."""

from conftest import save_text

from repro.core.experiments import build_audiences
from repro.core.reporting import render_table1
from repro.types import AgeBucket


def test_table1_balanced_audiences(benchmark, world, results_dir):
    pair = benchmark.pedantic(
        build_audiences,
        args=(world, "bench-table1"),
        kwargs={"name_prefix": "bench-table1"},
        rounds=1,
        iterations=1,
    )
    rows = pair.table1_rows()
    text = render_table1(rows)
    print("\n" + text)
    save_text(results_dir, "table1.txt", text)

    # Shape of the paper's Table 1: every Total is 4x its Group size, and
    # the 65+ bucket is the largest while 18-24 is the smallest.
    groups = {age: group for age, group, _total in rows}
    assert all(total == 4 * group for _age, group, total in rows)
    assert groups["65+"] == max(groups.values())
    assert groups["18-24"] == min(groups.values())
    assert len(rows) == len(AgeBucket)
