"""Figure 5 — per-image delivery panels for the StyleGAN campaign.

"Delivery statistics of ads featuring StyleGAN images, revealing similar
trends to those with stock images in Figure 3."
"""

from conftest import save_text

from repro.core.figures import figure3_panels
from repro.core.reporting import render_panel_ascii, write_panel_csv
from repro.types import AgeBand


def test_fig5_stylegan_delivery_panels(benchmark, campaign3, results_dir):
    panels = benchmark(figure3_panels, campaign3.deliveries)
    blocks = []
    for panel_id in ("A", "B", "C", "D"):
        blocks.append(render_panel_ascii(panels[panel_id]))
        write_panel_csv(panels[panel_id], results_dir / f"figure5{panel_id}.csv")
    text = "\n\n".join(blocks)
    print("\n" + text)
    save_text(results_dir, "figure5.txt", text)

    # Panel A: synthetic Black faces deliver significantly more to Black
    # users at every implied age.
    panel_a = panels["A"]
    for band in AgeBand:
        assert panel_a.mean(band, "Black") > panel_a.mean(band, "white"), band

    # Panel B: older synthetic faces deliver to older audiences (within
    # the capped 18-45 range the paper's Fig 5B spans ~32-36 years).
    panel_b = panels["B"]
    for series in panel_b.mean_lines():
        assert panel_b.mean(AgeBand.ELDERLY, series) > panel_b.mean(AgeBand.CHILD, series)
        assert 18.0 < panel_b.mean(AgeBand.ADULT, series) < 45.0

    # Panel C: male and female synthetic faces deliver very differently
    # by implied age; child images deliver most female for both genders.
    panel_c = panels["C"]
    assert panel_c.mean(AgeBand.CHILD, "female") > panel_c.mean(AgeBand.ADULT, "female")
