"""Extension — Lookalike Audiences reproduce seed demographics.

The paper's discussion cites the companion finding that audience
expansion "doesn't see color" yet reproduces the seed's racial makeup
through proxies.  This bench seeds a Lookalike with (half of) the white
voters and one with (half of) the Black voters and measures the racial
composition of the expansions against the universe baseline.
"""

import numpy as np
from conftest import save_text

from repro.core.world import SimulatedWorld, WorldConfig
from repro.platform.lookalike import build_lookalike
from repro.types import Race


def test_extension_lookalike_demographics(benchmark, results_dir):
    world = SimulatedWorld(WorldConfig.small(seed=43))
    universe = world.universe
    base_black = float(np.mean([u.race is Race.BLACK for u in universe.users]))

    def run_all():
        out = {}
        for label, race in (("white seed", Race.WHITE), ("Black seed", Race.BLACK)):
            seed_pool = [u for u in universe.users if u.race is race]
            seed = {u.user_id for u in seed_pool[::2]}
            members = build_lookalike(universe, seed, expansion_ratio=0.10)
            share = float(
                np.mean([universe.by_id(uid).race is Race.BLACK for uid in members])
            )
            out[label] = share
        return out

    shares = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = (
        "Extension: Black share of Lookalike expansions "
        f"(universe baseline {base_black:.3f})\n"
        + "\n".join(f"  {label}: {share:.3f}" for label, share in shares.items())
    )
    print("\n" + text)
    save_text(results_dir, "extension_lookalike.txt", text)

    # The product never sees race, yet the expansions inherit the seed's
    # racial makeup through the behavioural and geographic proxies.
    assert shares["Black seed"] > base_black + 0.15
    assert shares["white seed"] < base_black - 0.15
    assert shares["Black seed"] - shares["white seed"] > 0.3
