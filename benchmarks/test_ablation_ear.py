"""Ablation — where does the skew come from? The learned EAR.

DESIGN.md: compare delivery skew with (a) the learned EAR (default), (b) a
constant EAR (no content-based steering possible), and (c) an oracle EAR
(noiseless steering upper bound).  The race-delivery gap must collapse
under (b) and grow under (c) — demonstrating the skew is produced by the
learned ranking model, not hard-coded anywhere in the pipeline.
"""

import dataclasses

import numpy as np
from conftest import save_text

from repro.core.experiments import run_campaign1, stock_specs
from repro.core.world import SimulatedWorld, WorldConfig
from repro.types import Race


def _race_gap(ear_mode: str, seed: int = 31) -> float:
    config = dataclasses.replace(WorldConfig.small(seed=seed), ear_mode=ear_mode)
    world = SimulatedWorld(config)
    result = run_campaign1(world, specs=stock_specs(world, per_cell=2))
    black = np.mean(
        [d.fraction_black for d in result.deliveries if d.spec.race is Race.BLACK]
    )
    white = np.mean(
        [d.fraction_black for d in result.deliveries if d.spec.race is Race.WHITE]
    )
    return float(black - white)


def test_ablation_ear_modes(benchmark, results_dir):
    def run_all():
        return {mode: _race_gap(mode) for mode in ("constant", "learned", "oracle")}

    gaps = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = (
        "Ablation: race-delivery gap (Black-implied minus white-implied "
        "fraction-Black) by EAR mode\n"
        + "\n".join(f"  {mode:>9}: {gap:+.3f}" for mode, gap in gaps.items())
    )
    print("\n" + text)
    save_text(results_dir, "ablation_ear.txt", text)

    # No model -> no content steering; learned -> the paper's skew;
    # oracle -> at least as strong as learned.
    assert abs(gaps["constant"]) < 0.06
    assert gaps["learned"] > gaps["constant"] + 0.05
    assert gaps["oracle"] >= gaps["learned"] - 0.03
