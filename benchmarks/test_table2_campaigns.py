"""Table 2 — overview of the four ad campaigns."""

from conftest import save_text

from repro.core.reporting import render_table2


def test_table2_campaign_overview(
    benchmark, campaign1, campaign2, campaign3, campaign4, results_dir
):
    rows = [
        (campaign1.name, campaign1.summary),
        (campaign2.name, campaign2.summary),
        (campaign3.name, campaign3.summary),
        (campaign4.name, campaign4.summary),
    ]
    text = benchmark(render_table2, rows)
    print("\n" + text)
    save_text(results_dir, "table2.txt", text)

    # Paper Table 2 shape: campaigns 1-3 run 200 ads, campaign 4 runs 88;
    # each campaign reaches tens of thousands of impressions at a spend in
    # the hundreds of (simulated) dollars, and reach <= impressions.
    for name, summary in rows[:3]:
        assert summary.n_ads == 200, name
    assert rows[3][1].n_ads == 88
    for name, summary in rows:
        assert summary.impressions > 5_000, name
        assert summary.reach <= summary.impressions, name
        assert 50.0 < summary.spend < 800.0, name
    # Campaign 2 has the highest budget ($3.50/ad) and so the most spend.
    assert rows[1][1].spend == max(summary.spend for _n, summary in rows)
