"""Figure 4 — who aged 55+ receives images of young women / children."""

from conftest import save_text

from repro.core.figures import figure4_panels
from repro.core.reporting import render_panel_ascii, write_panel_csv
from repro.types import AgeBand


def test_fig4_older_audience_panels(benchmark, campaign1, results_dir):
    panels = benchmark(figure4_panels, campaign1.deliveries)
    blocks = []
    for panel_id in ("A", "B"):
        blocks.append(render_panel_ascii(panels[panel_id]))
        write_panel_csv(panels[panel_id], results_dir / f"figure4{panel_id}.csv")
    text = "\n\n".join(blocks)
    print("\n" + text)
    save_text(results_dir, "figure4.txt", text)

    # Panel A: older men receive many more ads depicting *young women*
    # than ads depicting young men (the TikTok/Musical.ly effect).
    panel_a = panels["A"]
    assert panel_a.mean(AgeBand.TEEN, "female") > panel_a.mean(AgeBand.TEEN, "male")

    # ...and the effect fades as the pictured woman's age increases:
    # teen-women images reach more 55+ men than elderly-women images'
    # general old-age pull would explain relative to men's images.
    gap_teen = panel_a.mean(AgeBand.TEEN, "female") - panel_a.mean(AgeBand.TEEN, "male")
    gap_elderly = panel_a.mean(AgeBand.ELDERLY, "female") - panel_a.mean(
        AgeBand.ELDERLY, "male"
    )
    assert gap_teen > gap_elderly

    # Panel B: older women see more images of children than of teens.
    panel_b = panels["B"]
    assert panel_b.mean(AgeBand.CHILD, "female") >= panel_b.mean(AgeBand.TEEN, "female")
