"""Extension — diagnostics of the Table-4a regression.

The Table-4 outcomes are delivery *fractions* of finitely many
impressions, so their variance depends on the impression count and level:
homoskedasticity is suspect by construction.  This bench runs the
standard diagnostics on the reproduced Table-4a %Black model and compares
classical vs HC1 inference for the headline coefficient.
"""

import numpy as np
from conftest import save_text

from repro.core.regression import fit_identity_regressions
from repro.stats.diagnostics import diagnose
from repro.stats.dummy import DummyCoding
from repro.stats.ols import fit_ols


def _design(deliveries):
    coding = DummyCoding()
    coding.add_factor("race", ["white", "Black"], labels={"Black": "Black"})
    coding.add_factor("gender", ["male", "female"], labels={"female": "Female"})
    coding.add_factor(
        "band",
        ["adult", "child", "teen", "middle-aged", "elderly"],
        labels={
            "child": "Child",
            "teen": "Teen",
            "middle-aged": "Middle-aged",
            "elderly": "Elderly",
        },
    )
    rows = [
        {"race": d.spec.race.value, "gender": d.spec.gender.value, "band": d.spec.band.value}
        for d in deliveries
    ]
    return coding.encode(rows)


def test_extension_regression_diagnostics(benchmark, campaign1, results_dir):
    X, names = _design(campaign1.deliveries)
    y = np.array([d.fraction_black for d in campaign1.deliveries])

    def run():
        report = diagnose(y, X)
        classical = fit_ols(y, X, names)
        robust = fit_ols(y, X, names, robust=True)
        return report, classical, robust

    report, classical, robust = benchmark(run)
    text = (
        "Extension: diagnostics of the Table-4a %Black regression\n"
        f"  Breusch-Pagan: stat={report.bp_statistic:.2f} "
        f"p={report.bp_p_value:.4f} -> "
        f"{'heteroskedastic' if report.heteroskedastic else 'homoskedastic'}\n"
        f"  residual normality p={report.normality_p_value:.4f}\n"
        f"  max Cook's distance={report.max_cooks_distance:.4f} "
        f"({report.n_influential} influential points by the 4/n rule)\n"
        f"  Black coefficient: {classical.coefficient('Black'):+.4f}\n"
        f"    classical SE {classical.stderr[1]:.4f} "
        f"(p={classical.p_value('Black'):.2e})\n"
        f"    HC1 robust SE {robust.stderr[1]:.4f} "
        f"(p={robust.p_value('Black'):.2e})"
    )
    print("\n" + text)
    save_text(results_dir, "extension_diagnostics.txt", text)

    # Whatever the error model, the headline inference is unchanged.
    assert classical.is_significant("Black", alpha=0.001)
    assert robust.is_significant("Black", alpha=0.001)
    # No single image drives the result.
    assert report.max_cooks_distance < 0.5
    # Robust and classical SEs agree within a factor ~2 here.
    assert 0.4 < robust.stderr[1] / classical.stderr[1] < 2.5
