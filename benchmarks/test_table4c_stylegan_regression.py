"""Table 4c — OLS on the synthetic (StyleGAN) image campaign."""

from conftest import save_text

from repro.core.regression import fit_identity_regressions
from repro.core.reporting import render_identity_regressions
from repro.types import Race


def test_table4c_stylegan_regressions(benchmark, campaign1, campaign3, results_dir):
    table = benchmark(
        fit_identity_regressions, campaign3.deliveries, top_age_threshold=35
    )
    text = render_identity_regressions(
        table, title="Table 4c: StyleGAN images, target capped at age 45"
    )
    print("\n" + text)
    save_text(results_dir, "table4c.txt", text)

    black_model = table.pct_black
    female_model = table.pct_female
    age_model = table.pct_top_age

    # §5.5's headline: the synthetic faces — where *only* the demographic
    # attribute varies — reproduce the race steering almost identically
    # (paper: 0.2344*** vs stock 0.2534***).
    assert black_model.is_significant("Black", alpha=0.001)
    stock_coef = campaign1.regressions.pct_black.coefficient("Black")
    synthetic_coef = black_model.coefficient("Black")
    assert synthetic_coef > 0.05
    # Same order of magnitude as the stock effect (not an artifact of
    # stock-photo nuisance like clothing or backgrounds).
    assert 0.4 < synthetic_coef / stock_coef < 2.5

    # Female and Child remain the significant %Female treatments
    # (paper: Female 0.1377***, Child 0.1643***).
    assert female_model.is_significant("Female")
    assert female_model.coefficient("Female") > 0.02

    # Child images deliver younger under the cap (paper: -0.0917***).
    assert age_model.coefficient("Child") < 0.0

    # Raw aggregate check mirroring the abstract's numbers (81% vs 50%
    # in the paper — factor ~1.3-1.6 between the two groups).
    black_adult = [
        d.fraction_black
        for d in campaign3.deliveries
        if d.spec.race is Race.BLACK
    ]
    white_adult = [
        d.fraction_black
        for d in campaign3.deliveries
        if d.spec.race is Race.WHITE
    ]
    assert sum(black_adult) / len(black_adult) > sum(white_adult) / len(white_adult) + 0.05
