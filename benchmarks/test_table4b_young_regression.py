"""Table 4b — OLS on the age-capped (≤45) stock-image campaign."""

from conftest import save_text

from repro.core.regression import fit_identity_regressions
from repro.core.reporting import render_identity_regressions


def test_table4b_agecapped_regressions(benchmark, campaign2, results_dir):
    table = benchmark(
        fit_identity_regressions, campaign2.deliveries, top_age_threshold=35
    )
    text = render_identity_regressions(
        table, title="Table 4b: stock images, target capped at age 45"
    )
    print("\n" + text)
    save_text(results_dir, "table4b.txt", text)

    black_model = table.pct_black
    female_model = table.pct_female
    age_model = table.pct_top_age

    # The race effect persists — in the paper it *strengthens*
    # (0.2534*** vs 0.1812***).
    assert black_model.is_significant("Black", alpha=0.001)
    assert black_model.coefficient("Black") > 0.05

    # "When we limit the maximum age of the targeted audience, women do
    # receive more ads that feature women" (paper: Female +0.0780**).
    assert female_model.is_significant("Female")
    assert female_model.coefficient("Female") > 0.02

    # Child images now deliver *younger* (paper: Child -> %35+ -0.0888***).
    assert age_model.is_significant("Child")
    assert age_model.coefficient("Child") < -0.02

    # The top-age target switched with the cap.
    assert table.top_age_label == "% Age 35+"

    # Nobody above the cap was reached at all.
    for delivery in campaign2.deliveries:
        assert delivery.fraction_age_at_least(55) == 0.0
