"""Table 4a — OLS on the all-ages stock-image campaign."""

from conftest import save_text

from repro.core.regression import fit_identity_regressions
from repro.core.reporting import render_identity_regressions


def test_table4a_stock_regressions(benchmark, campaign1, results_dir):
    table = benchmark(
        fit_identity_regressions, campaign1.deliveries, top_age_threshold=65
    )
    text = render_identity_regressions(
        table, title="Table 4a: stock images, all ages"
    )
    print("\n" + text)
    save_text(results_dir, "table4a.txt", text)

    black_model = table.pct_black
    female_model = table.pct_female
    age_model = table.pct_top_age

    # % Black model: the only strong, significant treatment is Black
    # (paper: +0.1812***; intercept 0.5697 — above one half).
    assert black_model.is_significant("Black", alpha=0.001)
    assert 0.05 < black_model.coefficient("Black") < 0.35
    assert black_model.coefficient("Intercept") > 0.5
    assert abs(black_model.coefficient("Child")) < abs(black_model.coefficient("Black"))

    # % Female model: Child is significant positive (paper +0.0924***).
    assert female_model.is_significant("Child", alpha=0.001)
    assert female_model.coefficient("Child") > 0.04

    # % Age 65+ model: Elderly is the largest positive coefficient
    # (paper +0.1180***).
    assert age_model.is_significant("Elderly", alpha=0.001)
    assert age_model.coefficient("Elderly") > 0.05
    assert age_model.coefficient("Elderly") > age_model.coefficient("Teen")

    # The image demographics explain a large share of variance
    # (paper R²: 0.62 / 0.26 / 0.46).
    assert black_model.r_squared > 0.4
    assert female_model.r_squared > 0.15
    assert age_model.r_squared > 0.25
