"""Figure 3 — per-image delivery panels for the stock campaign."""

from conftest import save_text

from repro.core.figures import figure3_panels
from repro.core.reporting import render_panel_ascii, write_panel_csv
from repro.types import AgeBand


def test_fig3_stock_delivery_panels(benchmark, campaign1, results_dir):
    panels = benchmark(figure3_panels, campaign1.deliveries)
    blocks = []
    for panel_id in ("A", "B", "C", "D"):
        blocks.append(render_panel_ascii(panels[panel_id]))
        write_panel_csv(panels[panel_id], results_dir / f"figure3{panel_id}.csv")
    text = "\n\n".join(blocks)
    print("\n" + text)
    save_text(results_dir, "figure3.txt", text)

    # Panel A: Black-implied images sit above white-implied images in
    # delivery-to-Black-users at EVERY age band (the clean separation the
    # paper describes).
    panel_a = panels["A"]
    for band in AgeBand:
        assert panel_a.mean(band, "Black") > panel_a.mean(band, "white"), band

    # Panels B and D: older-implied faces reach older audiences — the
    # elderly end sits above the child end for both race and gender splits.
    for panel_id in ("B", "D"):
        panel = panels[panel_id]
        for series in panel.mean_lines():
            assert panel.mean(AgeBand.ELDERLY, series) > panel.mean(AgeBand.CHILD, series)

    # Panel C: child images deliver most female; teen-women images deliver
    # much more male than child images (paper: 56.6% to men).
    panel_c = panels["C"]
    assert panel_c.mean(AgeBand.CHILD, "female") > panel_c.mean(AgeBand.TEEN, "female")
    assert panel_c.mean(AgeBand.CHILD, "male") > panel_c.mean(AgeBand.TEEN, "male")
