"""Extension — the relevance/disparity trade-off, quantified.

The paper's discussion: systems "designed with neutral-sounding objectives
('delivering relevant ads to users') can inadvertently bake in unwanted
bias".  The simulator makes the trade-off measurable: compared with a
non-optimising (constant-EAR) platform, the learned ranker simultaneously

* raises the realized click-through rate (it *is* delivering "relevant"
  ads — the platform's and advertiser's narrow incentive), and
* creates the racial delivery gap (the disparity the paper measures).

One number pair per regime, from identical worlds.
"""

import dataclasses

import numpy as np
from conftest import save_text

from repro.core.experiments import run_campaign1, stock_specs
from repro.core.world import SimulatedWorld, WorldConfig
from repro.types import Race


def _run(ear_mode: str, seed: int = 47) -> tuple[float, float]:
    """(realized CTR, race-delivery gap) for one platform regime."""
    config = dataclasses.replace(WorldConfig.small(seed=seed), ear_mode=ear_mode)
    world = SimulatedWorld(config)
    result = run_campaign1(world, specs=stock_specs(world, per_cell=2))
    clicks = sum(d.clicks for d in result.deliveries)
    impressions = sum(d.impressions for d in result.deliveries)
    ctr = clicks / impressions
    black = np.mean(
        [d.fraction_black for d in result.deliveries if d.spec.race is Race.BLACK]
    )
    white = np.mean(
        [d.fraction_black for d in result.deliveries if d.spec.race is Race.WHITE]
    )
    return float(ctr), float(black - white)


def test_extension_relevance_disparity_tradeoff(benchmark, results_dir):
    def run_both():
        return {"constant": _run("constant"), "learned": _run("learned")}

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)
    (ctr_const, gap_const) = outcomes["constant"]
    (ctr_learn, gap_learn) = outcomes["learned"]
    text = (
        "Extension: relevance vs disparity (same world, two platforms)\n"
        f"  non-optimising platform: CTR {ctr_const:.4f}, race gap {gap_const:+.3f}\n"
        f"  learned-ranker platform: CTR {ctr_learn:.4f}, race gap {gap_learn:+.3f}\n"
        f"  -> the ranker buys {(ctr_learn / ctr_const - 1):+.1%} CTR with "
        f"{gap_learn - gap_const:+.3f} of racial delivery gap"
    )
    print("\n" + text)
    save_text(results_dir, "extension_relevance.txt", text)

    # "Relevance" genuinely improves...
    assert ctr_learn > ctr_const * 1.1
    # ...and the disparity is the by-product.
    assert gap_learn > gap_const + 0.05
    assert abs(gap_const) < 0.06
