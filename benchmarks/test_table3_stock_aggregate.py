"""Table 3 — aggregate delivery breakdown of the stock-image campaign."""

from conftest import save_text

from repro.core.analysis import table3_rows
from repro.core.reporting import render_table3


def test_table3_aggregate_breakdowns(benchmark, campaign1, results_dir):
    rows = benchmark(table3_rows, campaign1.deliveries)
    text = render_table3(rows)
    print("\n" + text)
    save_text(results_dir, "table3.txt", text)

    by_group = {row.group: row for row in rows}

    # Paper row 1 vs 2: images of Black people deliver substantially more
    # to Black users than images of white people (73.8% vs 56.3%).
    assert by_group["Black"].fraction_black > by_group["White"].fraction_black + 0.08

    # Both race rows stay above 45% Black: the balanced audience's Black
    # users are cheaper/more active, so even white-implied images deliver
    # heavily to them (paper: 56.3%).
    assert by_group["White"].fraction_black > 0.45

    # Images of children deliver more to women than any other age band
    # (paper: 59.4% vs 48.2-52.4%).
    child_female = by_group["Child"].fraction_female
    for group in ("Teen", "Adult", "Middle-age" if "Middle-age" in by_group else "Middle-aged", "Elderly"):
        assert child_female > by_group[group].fraction_female

    # Overall delivery skews old: every row lands >65% on users 45+
    # although they are ~58% of the target audience (paper: 70.5-80.5%).
    for row in rows:
        assert row.fraction_age_45plus > 0.6

    # Elderly-implied images skew oldest (paper: 80.5%).
    assert by_group["Elderly"].fraction_age_45plus == max(
        by_group[g].fraction_age_45plus
        for g in ("Child", "Teen", "Adult", "Middle-aged", "Elderly")
    )
