"""Ablation — the race proxy.

The platform never observes race; it steers through the behavioural
cluster (and ZIP poverty).  At proxy fidelity 0.5 the cluster carries no
racial information, so the race-delivery gap must shrink toward what the
poverty channel alone can produce.
"""

import dataclasses

import numpy as np
from conftest import save_text

from repro.core.experiments import run_campaign1, stock_specs
from repro.core.world import SimulatedWorld, WorldConfig
from repro.platform.engagement import EngagementParams
from repro.types import Race


def _race_gap(proxy_fidelity: float, kill_poverty: bool = False, seed: int = 33) -> float:
    params = EngagementParams()
    if kill_poverty:
        params = EngagementParams(poverty_race_affinity=0.0)
    config = dataclasses.replace(
        WorldConfig.small(seed=seed),
        proxy_fidelity=proxy_fidelity,
        engagement_params=params,
    )
    world = SimulatedWorld(config)
    result = run_campaign1(world, specs=stock_specs(world, per_cell=3))
    black = np.mean(
        [d.fraction_black for d in result.deliveries if d.spec.race is Race.BLACK]
    )
    white = np.mean(
        [d.fraction_black for d in result.deliveries if d.spec.race is Race.WHITE]
    )
    return float(black - white)


def test_ablation_proxy_fidelity(benchmark, results_dir):
    def run_all():
        return {
            "fidelity 0.88 (default)": _race_gap(0.88),
            "fidelity 0.50 (no proxy)": _race_gap(0.50),
            "fidelity 0.50 + no poverty channel": _race_gap(0.50, kill_poverty=True),
        }

    gaps = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = "Ablation: race-delivery gap by proxy fidelity\n" + "\n".join(
        f"  {label}: {gap:+.3f}" for label, gap in gaps.items()
    )
    print("\n" + text)
    save_text(results_dir, "ablation_proxy.txt", text)

    assert gaps["fidelity 0.88 (default)"] > gaps["fidelity 0.50 (no proxy)"]
    # With both race channels removed the platform cannot steer by race
    # (the bound allows the sampling noise of a 60-image mini campaign).
    assert abs(gaps["fidelity 0.50 + no poverty channel"]) < 0.08
    assert (
        gaps["fidelity 0.50 (no proxy)"]
        > gaps["fidelity 0.50 + no poverty channel"]
    )
