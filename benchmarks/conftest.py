"""Benchmark fixtures: one paper-scale world, each campaign run once.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure
of the paper.  The expensive parts (world construction, the four campaigns
and the appendix run) are session-scoped fixtures; each bench then times
the analysis step it regenerates and asserts the paper's *shape* claims
(who wins, direction and significance of effects), never absolute values.

Rendered tables and CSV figure series are written to ``results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.experiments import (
    run_appendix_a,
    run_campaign1,
    run_campaign2,
    run_campaign3,
    run_campaign4,
)
from repro.core.world import SimulatedWorld, WorldConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Seed for the benchmark world; EXPERIMENTS.md records this run.
BENCH_SEED = 7


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def world() -> SimulatedWorld:
    return SimulatedWorld(WorldConfig.paper(seed=BENCH_SEED))


@pytest.fixture(scope="session")
def campaign1(world):
    return run_campaign1(world)


@pytest.fixture(scope="session")
def campaign2(world):
    return run_campaign2(world)


@pytest.fixture(scope="session")
def campaign3(world):
    return run_campaign3(world)


@pytest.fixture(scope="session")
def campaign4(world):
    return run_campaign4(world)


@pytest.fixture(scope="session")
def appendix_a(world):
    return run_appendix_a(world)


def save_text(results_dir: Path, name: str, text: str) -> None:
    """Persist one rendered table/figure under results/."""
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
