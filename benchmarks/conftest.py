"""Benchmark fixtures: one paper-scale world, each campaign run once.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure
of the paper.  The expensive parts (world construction, the four campaigns
and the appendix run) are session-scoped fixtures; each bench then times
the analysis step it regenerates and asserts the paper's *shape* claims
(who wins, direction and significance of effects), never absolute values.

Rendered tables and CSV figure series are written to ``results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.experiments import (
    run_appendix_a,
    run_campaign1,
    run_campaign2,
    run_campaign3,
    run_campaign4,
)
from repro.core.world import SimulatedWorld, WorldConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Seed for the benchmark world; EXPERIMENTS.md records this run.
BENCH_SEED = 7


def pytest_addoption(parser):
    try:
        parser.addoption(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for scheduler-driven benches (1 = in-process)",
        )
        parser.addoption(
            "--persistent-cache",
            action="store_true",
            help="use the real artifact cache ($REPRO_CACHE_DIR) instead of a tmp dir",
        )
    except ValueError:  # options already registered (tests/ + benchmarks/ together)
        pass


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache(request, tmp_path_factory):
    """Point the artifact cache at a per-session tmp dir by default.

    Benches stay hermetic — no reads from or writes to the user's real
    ``~/.cache/repro-worlds`` — unless ``--persistent-cache`` opts in.
    """
    if request.config.getoption("--persistent-cache"):
        yield
        return
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def jobs(request) -> int:
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def world() -> SimulatedWorld:
    return SimulatedWorld(WorldConfig.paper(seed=BENCH_SEED))


@pytest.fixture(scope="session")
def campaign1(world):
    return run_campaign1(world)


@pytest.fixture(scope="session")
def campaign2(world):
    return run_campaign2(world)


@pytest.fixture(scope="session")
def campaign3(world):
    return run_campaign3(world)


@pytest.fixture(scope="session")
def campaign4(world):
    return run_campaign4(world)


@pytest.fixture(scope="session")
def appendix_a(world):
    return run_appendix_a(world)


def save_text(results_dir: Path, name: str, text: str) -> None:
    """Persist one rendered table/figure under results/."""
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
