"""Figure 7 — congruence scatter of the real-world employment ads."""

from conftest import save_text

from repro.core.figures import figure7_points
from repro.core.reporting import render_congruence_ascii, write_congruence_csv


def test_fig7_jobad_congruence_scatter(benchmark, campaign4, results_dir):
    panels = benchmark(figure7_points, campaign4.deliveries)
    blocks = []
    for panel_id in ("A", "B"):
        blocks.append(render_congruence_ascii(panels[panel_id], label=panel_id))
        write_congruence_csv(panels[panel_id], results_dir / f"figure7{panel_id}.csv")
    text = "\n\n".join(blocks)
    print("\n" + text)
    save_text(results_dir, "figure7.txt", text)

    # Panel A: "the vast majority of the employment ads delivered with a
    # congruent race skew".
    panel_a = panels["A"]
    congruent = sum(1 for p in panel_a if p.is_congruent)
    assert congruent >= 0.75 * len(panel_a)

    # Industry baselines behave like Ali et al.: lumber reaches a whiter
    # audience than janitorial, whatever face is shown.
    lumber = [p for p in panel_a if p.job_category == "lumber"]
    janitor = [p for p in panel_a if p.job_category == "janitor"]
    lumber_black = sum(p.congruent_value + p.reference_value for p in lumber)
    janitor_black = sum(p.congruent_value + p.reference_value for p in janitor)
    assert janitor_black > lumber_black

    # Panel B: no systematic gender skew — points split both sides of
    # the diagonal.
    panel_b = panels["B"]
    congruent_b = sum(1 for p in panel_b if p.is_congruent)
    assert 0.15 * len(panel_b) <= congruent_b <= 0.85 * len(panel_b)
