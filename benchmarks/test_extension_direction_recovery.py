"""Extension — latent-direction recovery quality vs sample size.

§5.4 fits directions on 50,000 generated faces without justifying the
number.  This bench measures *functional* recovery quality — how much of
the planted direction's effect a fitted direction reproduces per unit
step — as the fit size grows, showing the paper's choice sits deep in the
diminishing-returns regime.
"""

import numpy as np
from conftest import BENCH_SEED, save_text

from repro.images.classifier import DeepfaceLikeClassifier
from repro.images.gan import LatentDirections, MappingNetwork, Synthesizer, manipulate


def _recovery_score(
    mapper: MappingNetwork,
    synthesizer: Synthesizer,
    directions: LatentDirections,
    rng: np.random.Generator,
    *,
    n_faces: int = 24,
    alpha: float = 3.0,
) -> float:
    """Mean race-score response to a small step, relative to the planted
    direction's own response (1.0 = perfect functional recovery).

    ``alpha`` stays in the sigmoid's linear regime — large steps saturate
    the readout and hide quality differences between fits.
    """
    z = mapper.sample_z(rng, n_faces)
    base = mapper.activations(z)
    fitted = directions.direction("race")
    planted = synthesizer.planted_direction("race")

    def mean_shift(direction: np.ndarray) -> float:
        shifts = []
        for row in base:
            up = synthesizer.synthesize(manipulate(row, direction, alpha)).race_score
            down = synthesizer.synthesize(manipulate(row, direction, -alpha)).race_score
            shifts.append(up - down)
        return float(np.mean(shifts))

    planted_shift = mean_shift(planted)
    if planted_shift == 0:
        return 0.0
    return mean_shift(fitted) / planted_shift


def test_extension_direction_recovery_vs_n(benchmark, results_dir):
    mapper = MappingNetwork(network_seed=BENCH_SEED)
    synthesizer = Synthesizer(mapper, network_seed=BENCH_SEED)
    sizes = (500, 2000, 8000)

    def sweep():
        scores = {}
        for n in sizes:
            classifier = DeepfaceLikeClassifier(np.random.default_rng(BENCH_SEED))
            directions = LatentDirections.fit(
                mapper,
                synthesizer,
                classifier,
                np.random.default_rng(BENCH_SEED + n),
                n_samples=n,
            )
            scores[n] = _recovery_score(
                mapper, synthesizer, directions, np.random.default_rng(BENCH_SEED + 1)
            )
        return scores

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = (
        "Extension: functional recovery of the race direction vs fit size\n"
        + "\n".join(f"  n={n:>5}: {score:.3f}" for n, score in scores.items())
        + "\n  (1.0 = the fitted direction moves race_score exactly as the "
        "generator's own axis does; the paper fitted at n=50,000)"
    )
    print("\n" + text)
    save_text(results_dir, "extension_direction_recovery.txt", text)

    # Recovery grows with n with clearly diminishing returns: the step
    # from 500 -> 2000 buys more than 2000 -> 8000.
    assert scores[500] > 0.15
    assert scores[2000] > scores[500]
    assert scores[8000] > scores[2000]
    assert (scores[2000] - scores[500]) > (scores[8000] - scores[2000])
