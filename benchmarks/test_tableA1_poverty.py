"""Table A1 — poverty-controlled regression (Appendix A)."""

from conftest import save_text

from repro.core.reporting import render_single_regression


def test_tableA1_poverty_controlled(benchmark, campaign1, appendix_a, results_dir):
    result = appendix_a
    text = benchmark(
        render_single_regression,
        result.regression,
        title="Table A1: poverty-controlled stock regression",
        column="% Black",
    )
    print("\n" + text)
    print(
        f"review rejected {result.rejected_ads} ads "
        f"(paper: 44 upheld after appeal); {result.kept_images} images analysed "
        "(paper: 24 per campaign)"
    )
    save_text(results_dir, "tableA1.txt", text)

    model = result.regression

    # The race coefficient survives the poverty control, significant but
    # attenuated relative to the main experiment (paper: 0.0849** vs
    # 0.1812***), because the economically mediated component is gone.
    assert model.is_significant("Black")
    main_coef = campaign1.regressions.pct_black.coefficient("Black")
    assert 0.0 < model.coefficient("Black") < main_coef

    # No other treatment reaches significance (paper: all n.s.).
    for term in model.terms:
        if term not in ("Intercept", "Black"):
            assert not model.is_significant(term, alpha=0.01), term

    # The Child term is absent — child images did not survive the
    # review/subsampling step (matching the paper's Table A1 terms).
    assert "Child" not in model.terms

    # Review friction matched the paper's scale: ~44 of 200 resubmitted
    # ads stayed rejected after appeal.
    assert 15 <= result.rejected_ads <= 90
    assert result.kept_images == 24
