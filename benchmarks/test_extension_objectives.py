"""Extension — delivery skew by campaign objective.

The paper runs everything with Traffic "consistent with prior work"; that
prior work (Ali et al.) found that skew grows with optimisation depth.
This bench runs the same paired stock design under Awareness (no
engagement optimisation), Traffic, and Conversions (deeper funnel) and
measures the race-delivery gap under each: the gap must be ordered
AWARENESS < TRAFFIC < CONVERSIONS.
"""

import numpy as np
from conftest import save_text

from repro.core.campaign_runner import PairedCampaignRunner
from repro.core.experiments import build_audiences, run_campaign1, stock_specs
from repro.core.world import SimulatedWorld, WorldConfig
from repro.types import Race


def _race_gap(world, audiences, objective: str, specs) -> float:
    runner = PairedCampaignRunner(
        world.client(),
        "obj-ext",
        audiences,
        daily_budget_cents=150,
        objective=objective,
    )
    deliveries, _ = runner.run(specs, f"objective-{objective.lower()}")
    black = np.mean(
        [d.fraction_black for d in deliveries if d.spec.race is Race.BLACK]
    )
    white = np.mean(
        [d.fraction_black for d in deliveries if d.spec.race is Race.WHITE]
    )
    return float(black - white)


def test_extension_objective_depth(benchmark, results_dir):
    world = SimulatedWorld(WorldConfig.small(seed=41))
    audiences = build_audiences(world, "obj-ext", name_prefix="obj-ext")
    specs = stock_specs(world, per_cell=2)

    def run_all():
        return {
            objective: _race_gap(world, audiences, objective, specs)
            for objective in ("AWARENESS", "TRAFFIC", "CONVERSIONS")
        }

    gaps = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = (
        "Extension: race-delivery gap by campaign objective "
        "(optimisation depth)\n"
        + "\n".join(f"  {obj:>11}: {gap:+.3f}" for obj, gap in gaps.items())
    )
    print("\n" + text)
    save_text(results_dir, "extension_objectives.txt", text)

    assert abs(gaps["AWARENESS"]) < 0.06
    assert gaps["TRAFFIC"] > gaps["AWARENESS"] + 0.05
    assert gaps["CONVERSIONS"] > gaps["TRAFFIC"]
