"""Ablation — why run two reversed audience copies?

§3.3: "we run two copies of the ad in parallel to 'reversed' Custom
Audiences ... This way, we minimize the influence of any confounding
non-race related differences between the two locations."

This bench sweeps a synthetic between-state activity imbalance: at ratio
r, location A simply delivers r× as many impressions as location B for
non-race reasons.  The single-copy estimator absorbs that as spurious
race skew; the reversed-copy estimator stays unbiased at any r.
"""

import numpy as np
from conftest import save_text

from repro.core.race_split import CopyRegionCounts, infer_race_split


def _estimates(ratio: float, base: int = 10_000) -> tuple[float, float]:
    """(single-copy, reversed-copy) %Black estimates when truth is 50%."""
    fl = int(base * ratio)
    nc = base
    copy_a = CopyRegionCounts(fl, nc, 0, fl_is_white=True)
    copy_b = CopyRegionCounts(fl, nc, 0, fl_is_white=False)
    single = infer_race_split([copy_a]).fraction_black
    paired = infer_race_split([copy_a, copy_b]).fraction_black
    return single, paired


def test_ablation_reversed_copy_bias(benchmark, results_dir):
    ratios = (1.0, 1.2, 1.5, 2.0, 3.0)

    def sweep():
        return {r: _estimates(r) for r in ratios}

    rows = benchmark(sweep)
    lines = [
        "Ablation: %Black estimate when ground truth is 50%, by FL/NC "
        "activity ratio",
        "  ratio | single copy | reversed copies",
    ]
    for ratio, (single, paired) in rows.items():
        lines.append(f"  {ratio:5.1f} | {single:11.3f} | {paired:15.3f}")
    text = "\n".join(lines)
    print("\n" + text)
    save_text(results_dir, "ablation_reversed_copies.txt", text)

    for ratio, (single, paired) in rows.items():
        # Reversed copies are exactly unbiased at every imbalance.
        assert paired == 0.5
        # The single copy's bias grows with the imbalance.
        expected_single = 1.0 / (1.0 + ratio)
        assert abs(single - expected_single) < 1e-9
    assert rows[3.0][0] < 0.3  # at 3x imbalance the single copy is wildly off
