"""Table 5 — mixed-effects regressions on the real-world employment ads."""

from conftest import save_text

from repro.core.regression import fit_jobad_regressions
from repro.core.reporting import render_jobad_regressions


def test_table5_jobad_mixed_models(benchmark, campaign4, results_dir):
    table = benchmark(fit_jobad_regressions, campaign4.deliveries)
    text = render_jobad_regressions(table)
    print("\n" + text)
    save_text(results_dir, "table5.txt", text)

    # Models I-III: congruent race skew, significant in every split
    # (paper: +0.141***, +0.070*, +0.105***).
    for model in (
        table.black_implied_female,
        table.black_implied_male,
        table.black_overall,
    ):
        assert model.is_significant("Implied: Black")
        assert 0.01 < model.coefficient("Implied: Black") < 0.30

    # The job-ad effect is attenuated relative to the portrait campaigns
    # (faces occupy a fraction of the creative): paper 0.105 vs 0.234.
    assert table.black_overall.coefficient("Implied: Black") < 0.20

    # Models IV-VI: no systematic gender skew (paper: 0.023 / -0.020 /
    # 0.002, all n.s.).  The simulator's measurement noise is lower than
    # Facebook's, so effects of the same tiny magnitude can reach nominal
    # significance here; the shape claim that holds in both worlds is the
    # *scale*: the gender effects are tiny in absolute terms and an order
    # of magnitude below the race effect.
    race_effect = table.black_overall.coefficient("Implied: Black")
    for model in (
        table.female_implied_black,
        table.female_implied_white,
        table.female_overall,
    ):
        gender_effect = model.coefficient("Implied: female")
        assert abs(gender_effect) < 0.05
        assert abs(gender_effect) < 0.55 * race_effect

    # Eleven job types act as grouping levels.
    assert table.black_overall.n_groups == 11
