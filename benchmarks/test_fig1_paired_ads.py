"""Figure 1 — a single pair of job ads with dramatically different delivery.

The paper's opening example: two identical job ads, differing only in the
race of the pictured person, delivered 56% vs 29% to white users.
"""

from conftest import save_text

from repro.types import Gender, Race


def _white_fraction(delivery) -> float:
    return delivery.race_split().fraction_white


def test_fig1_single_pair_contrast(benchmark, campaign4, results_dir):
    def best_pair():
        """The job pair with the largest congruent contrast (as a paper
        figure would showcase)."""
        pairs = []
        by_key = {
            (d.spec.job_category, d.spec.race, d.spec.gender): d
            for d in campaign4.deliveries
        }
        for (job, race, gender), d in by_key.items():
            if race is Race.WHITE:
                partner = by_key.get((job, Race.BLACK, gender))
                if partner is not None:
                    pairs.append((job, gender, d, partner))
        return max(
            pairs, key=lambda p: _white_fraction(p[2]) - _white_fraction(p[3])
        )

    job, gender, white_ad, black_ad = benchmark(best_pair)
    white_pct = _white_fraction(white_ad)
    black_pct = _white_fraction(black_ad)
    text = (
        f"Figure 1 analogue — job '{job}' ({gender.value} presenting):\n"
        f"  ad with a white person  -> {white_pct:.0%} white actual audience\n"
        f"  ad with a Black person  -> {black_pct:.0%} white actual audience\n"
        "  (paper example: 56% vs 29%)"
    )
    print("\n" + text)
    save_text(results_dir, "figure1.txt", text)

    # Same time, same budget, same audience — and a double-digit gap in
    # who ultimately saw the ad.
    assert white_pct - black_pct > 0.10
